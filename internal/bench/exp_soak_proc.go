package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// This file holds the soak scenarios that deploy real musicd OS processes
// instead of in-process clusters: `restarts` (kill -9 one process mid-run,
// restart it, and verify it catches up through the startup state-transfer
// pull) and `reconfig` (drive join / retire / crash+replace through
// POST /v1/admin/membership while the workload keeps running). The driver
// lives in this benchmark process and speaks the Table I REST API, failing
// over to the next serving site exactly where a production load balancer
// would.

// soakProcReport is the extra JSON the process scenarios attach to their
// soakReport entry: what the script did to the deployment and what the
// verification observed.
type soakProcReport struct {
	Deployment  string   `json:"deployment"`
	Events      []string `json:"events,omitempty"`
	Restarted   string   `json:"restarted,omitempty"`
	CaughtUp    bool     `json:"caught_up,omitempty"`
	CatchupRows int      `json:"catchup_rows,omitempty"`
	FinalEpoch  int64    `json:"final_epoch,omitempty"`
}

// runSoakProcScenarios builds the musicd binary once and runs both
// process-backed scenarios. Durations are independent of the in-process
// scenarios: spawning and reconfiguring real processes needs a floor even
// in quick mode.
func runSoakProcScenarios(opts Options) []soakReport {
	dur, workers := 9*time.Second, 9
	if opts.Quick {
		dur, workers = 5*time.Second, 6
	}
	dir, err := os.MkdirTemp("", "music-soak")
	if err != nil {
		panic(fmt.Sprintf("bench: soak: %v", err))
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "musicd")
	if out, berr := exec.Command("go", "build", "-o", bin, "repro/cmd/musicd").CombinedOutput(); berr != nil {
		panic(fmt.Sprintf("bench: soak: build musicd: %v\n%s", berr, out))
	}
	opts.logf("  soak: restarts (real musicd processes)")
	restarts := runProcRestarts(bin, dir, dur, workers)
	opts.logf("  soak: reconfig (real musicd processes)")
	reconfig := runProcReconfig(bin, dir, dur, workers)
	return []soakReport{restarts, reconfig}
}

// runProcRestarts kills one site's musicd mid-run (SIGKILL, no drain — the
// in-memory store is gone), restarts it on the same identity, and verifies
// the rejoined process pulled its key ranges back through the startup
// state-transfer path before serving.
func runProcRestarts(bin, dir string, dur time.Duration, workers int) soakReport {
	d := newProcDeploy(bin, dir, "restarts", []string{"site-a", "site-b", "site-c"}, nil)
	defer d.close()
	for _, s := range d.sites {
		d.mustStart(s)
	}
	d.mustHealthy(30 * time.Second)
	env := newSoakProcEnv("restarts", d.sites...)
	victim := d.sites[1]
	proc := &soakProcReport{
		Deployment: "3 musicd processes over loopback TCP",
		Restarted:  victim.site,
	}
	script := make(chan struct{})
	go func() {
		defer close(script)
		time.Sleep(dur / 3)
		env.drop(victim)
		d.kill(victim)
		proc.Events = append(proc.Events, fmt.Sprintf("kill -9 %s at t+%v", victim.site, dur/3))
		time.Sleep(dur / 4)
		if err := d.start(victim); err != nil {
			proc.Events = append(proc.Events, fmt.Sprintf("restart %s: %v", victim.site, err))
			return
		}
		if err := d.healthy(victim, 30*time.Second); err != nil {
			proc.Events = append(proc.Events, fmt.Sprintf("restart %s: %v", victim.site, err))
			return
		}
		rows, ok := victim.waitCatchup(15 * time.Second)
		proc.CatchupRows = rows
		proc.CaughtUp = ok && rows > 0
		proc.Events = append(proc.Events,
			fmt.Sprintf("restarted %s; startup state transfer pulled %d rows", victim.site, rows))
		env.add(victim)
	}()
	start := env.rt.Now()
	env.runWorkers(workers, dur, func(w, iter int, rng *rand.Rand) {
		env.section(w, fmt.Sprintf("rr-%d", rng.Intn(8)))
	})
	wall := env.rt.Now() - start
	<-script
	return env.report(wall, proc)
}

// runProcReconfig runs the acceptance lifecycle against live processes: a
// spare site joins, a member retires, a member crashes and is replaced —
// all through the admin endpoint, while the critical-section workload keeps
// running against whichever sites currently serve.
func runProcReconfig(bin, dir string, dur time.Duration, workers int) soakReport {
	d := newProcDeploy(bin, dir, "reconfig",
		[]string{"site-a", "site-b", "site-c", "site-d"},
		map[string]bool{"site-d": true})
	defer d.close()
	for _, s := range d.sites {
		d.mustStart(s)
	}
	d.mustHealthy(30 * time.Second)
	a, b, c, spare := d.sites[0], d.sites[1], d.sites[2], d.sites[3]
	env := newSoakProcEnv("reconfig", a, b, c)
	proc := &soakProcReport{Deployment: "3 member + 1 spare musicd processes over loopback TCP"}
	t0 := time.Now()
	at := func(offset time.Duration) { time.Sleep(time.Until(t0.Add(offset))) }
	script := make(chan struct{})
	go func() {
		defer close(script)
		step := func(ev string, err error) {
			if err != nil {
				ev = fmt.Sprintf("%s: %v", ev, err)
			}
			proc.Events = append(proc.Events, ev)
		}

		// Planned growth: the spare's site joins and starts serving once its
		// own polled view has caught up.
		at(dur / 5)
		err := procReconfigure(a.url, `{"op":"join","site":"site-d"}`, 20*time.Second,
			func(m procMembership) bool { return hasProcSite(m, "site-d") })
		if err == nil {
			err = procWaitSite(spare.url, "site-d", true, 20*time.Second)
		}
		if err == nil {
			env.add(spare)
		}
		step("join site-d", err)

		// Planned shrink: the retired process keeps running (it stays in the
		// config group) but no longer serves sections.
		at(2 * dur / 5)
		err = procReconfigure(a.url, `{"op":"retire","site":"site-c"}`, 20*time.Second,
			func(m procMembership) bool { return !hasProcSite(m, "site-c") })
		if err == nil {
			env.drop(c)
		}
		step("retire site-c", err)

		// Unplanned: a member dies with no drain...
		at(3 * dur / 5)
		env.drop(b)
		d.kill(b)
		step(fmt.Sprintf("kill -9 %s", b.site), nil)

		// ...and is replaced by the retired site in one epoch.
		at(7 * dur / 10)
		err = procReconfigure(a.url, `{"op":"replace","site":"site-b","with":"site-c"}`, 20*time.Second,
			func(m procMembership) bool { return hasProcSite(m, "site-c") && !hasProcSite(m, "site-b") })
		if err == nil {
			err = procWaitSite(c.url, "site-c", true, 20*time.Second)
		}
		if err == nil {
			env.add(c)
		}
		step("replace site-b with site-c", err)

		if m, merr := procMembershipOf(a.url); merr == nil {
			proc.FinalEpoch = m.Epoch
		}
	}()
	start := env.rt.Now()
	env.runWorkers(workers, dur, func(w, iter int, rng *rand.Rand) {
		env.section(w, fmt.Sprintf("rc-%d", rng.Intn(12)))
	})
	wall := env.rt.Now() - start
	<-script
	return env.report(wall, proc)
}

// procDeploy is one scenario's set of musicd processes sharing a peers.json.
type procDeploy struct {
	bin       string
	peersPath string
	sites     []*procSite
}

// procSite is one musicd process slot: a fixed identity (site, transport
// addr, REST addr) whose process can be killed and started again.
type procSite struct {
	site     string
	httpAddr string
	url      string
	cmd      *exec.Cmd
	buf      *logBuf
}

func newProcDeploy(bin, dir, name string, sites []string, spares map[string]bool) *procDeploy {
	ports, err := procFreePorts(2 * len(sites))
	if err != nil {
		panic(fmt.Sprintf("bench: soak: %v", err))
	}
	d := &procDeploy{bin: bin}
	entries := make([]map[string]any, len(sites))
	for i, site := range sites {
		entries[i] = map[string]any{
			"id":   i,
			"site": site,
			"addr": fmt.Sprintf("127.0.0.1:%d", ports[i]),
		}
		if spares[site] {
			entries[i]["spare"] = true
		}
		httpAddr := fmt.Sprintf("127.0.0.1:%d", ports[len(sites)+i])
		d.sites = append(d.sites, &procSite{site: site, httpAddr: httpAddr, url: "http://" + httpAddr})
	}
	data, err := json.Marshal(entries)
	if err != nil {
		panic(fmt.Sprintf("bench: soak: %v", err))
	}
	d.peersPath = filepath.Join(dir, name+"-peers.json")
	if err := os.WriteFile(d.peersPath, data, 0o644); err != nil {
		panic(fmt.Sprintf("bench: soak: %v", err))
	}
	return d
}

func (d *procDeploy) start(s *procSite) error {
	s.buf = &logBuf{}
	cmd := exec.Command(d.bin, "-peers", d.peersPath, "-site", s.site, "-addr", s.httpAddr, "-t", "2s")
	cmd.Stdout = s.buf
	cmd.Stderr = s.buf
	if err := cmd.Start(); err != nil {
		return err
	}
	s.cmd = cmd
	return nil
}

func (d *procDeploy) mustStart(s *procSite) {
	if err := d.start(s); err != nil {
		panic(fmt.Sprintf("bench: soak: start %s: %v", s.site, err))
	}
}

func (d *procDeploy) kill(s *procSite) {
	if s.cmd == nil {
		return
	}
	_ = s.cmd.Process.Kill()
	_, _ = s.cmd.Process.Wait()
	s.cmd = nil
}

func (d *procDeploy) close() {
	for _, s := range d.sites {
		d.kill(s)
	}
}

func (d *procDeploy) healthy(s *procSite, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := procHTTP.Get(s.url + "/v1/health")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s never became healthy: %v", s.site, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (d *procDeploy) mustHealthy(timeout time.Duration) {
	for _, s := range d.sites {
		if err := d.healthy(s, timeout); err != nil {
			panic(fmt.Sprintf("bench: soak: %v", err))
		}
	}
}

var procCatchupRE = regexp.MustCompile(`startup state transfer: caught up (\d+) rows`)

// waitCatchup scans the process's captured log for the startup state-transfer
// line and returns the row count it reported.
func (s *procSite) waitCatchup(timeout time.Duration) (int, bool) {
	deadline := time.Now().Add(timeout)
	for {
		if m := procCatchupRE.FindStringSubmatch(s.buf.String()); m != nil {
			n, _ := strconv.Atoi(m[1])
			return n, true
		}
		if time.Now().After(deadline) {
			return 0, false
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// logBuf is a goroutine-safe capture of a child process's combined output.
type logBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *logBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// procHTTP bounds every driver request so a killed process costs one fast
// error, not a hung worker.
var procHTTP = &http.Client{Timeout: 3 * time.Second}

// soakProcEnv drives the Table I REST API against whichever sites currently
// serve, recording into the same soak_* metric series as the in-process
// scenarios.
type soakProcEnv struct {
	soakRecorder
	scenario string
	mu       sync.Mutex
	serving  []*procSite
}

func newSoakProcEnv(scenario string, serving ...*procSite) *soakProcEnv {
	rt := sim.NewReal(1)
	return &soakProcEnv{
		soakRecorder: soakRecorder{rt: rt, ob: obs.New(rt, obs.Options{})},
		scenario:     scenario,
		serving:      append([]*procSite(nil), serving...),
	}
}

func (env *soakProcEnv) add(s *procSite) {
	env.mu.Lock()
	defer env.mu.Unlock()
	for _, cur := range env.serving {
		if cur == s {
			return
		}
	}
	env.serving = append(env.serving, s)
}

func (env *soakProcEnv) drop(s *procSite) {
	env.mu.Lock()
	defer env.mu.Unlock()
	out := env.serving[:0]
	for _, cur := range env.serving {
		if cur != s {
			out = append(out, cur)
		}
	}
	env.serving = append([]*procSite(nil), out...)
}

func (env *soakProcEnv) snapshot() []*procSite {
	env.mu.Lock()
	defer env.mu.Unlock()
	return append([]*procSite(nil), env.serving...)
}

func (env *soakProcEnv) runWorkers(n int, dur time.Duration, work func(w, iter int, rng *rand.Rand)) {
	soakWorkers(env.rt, &env.stopped, n, dur, work)
}

// section runs one REST critical section from worker w's home site, failing
// over to the next serving site on any error — the front-end re-route of
// §III-A, here implemented above real processes. A sweep that fails at every
// serving site (a section straddling an epoch change that hasn't reached
// every view yet, or one stuck behind a killed holder's forced-release
// drain) is re-driven after a short backoff against a fresh snapshot, the
// way a production front end retries; the failure is only counted once the
// retry budget is spent.
func (env *soakProcEnv) section(w int, key string) {
	m := env.ob.Metrics()
	labels := obs.Labels{"scenario": env.scenario}
	start := env.rt.Now()
	var err error
	prev := ""
	for round := 0; round < 3; round++ {
		if round > 0 {
			time.Sleep(200 * time.Millisecond)
		}
		sites := env.snapshot()
		if len(sites) == 0 {
			err = fmt.Errorf("no serving sites")
			continue
		}
		for k := 0; k < len(sites); k++ {
			target := sites[(w+k)%len(sites)]
			if prev != "" {
				m.Counter("music_failover_total", obs.Labels{"from": prev, "to": target.site}).Inc()
			}
			err = env.runSection(target.url, key, w)
			prev = target.site
			if err == nil {
				break
			}
		}
		if err == nil {
			break
		}
	}
	m.Counter("soak_sections_total", labels).Inc()
	if err != nil {
		m.Counter("soak_failures_total", labels).Inc()
		return
	}
	m.Histogram("soak_section_latency", labels).Observe(env.rt.Now() - start)
}

// runSection is one full Table I section over REST: create lockRef, acquire
// until holder, critical get + put, release. Any refusal or transport error
// fails the section (the abandoned lockRef expires after T).
func (env *soakProcEnv) runSection(base, key string, w int) error {
	status, data, err := procDo("POST", base+"/v1/locks/"+key, nil)
	if err != nil {
		return err
	}
	if status != http.StatusCreated {
		return fmt.Errorf("create lockRef: %d %s", status, data)
	}
	var created struct {
		LockRef int64 `json:"lockRef"`
	}
	if err := json.Unmarshal(data, &created); err != nil {
		return fmt.Errorf("create lockRef: %v", err)
	}
	lockPath := fmt.Sprintf("%s/v1/locks/%s/%d", base, key, created.LockRef)
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, data, err = procDo("GET", lockPath, nil)
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("acquire: %d %s", status, data)
		}
		var got struct {
			Holder bool `json:"holder"`
		}
		if err := json.Unmarshal(data, &got); err != nil {
			return fmt.Errorf("acquire: %v", err)
		}
		if got.Holder {
			break
		}
		if time.Now().After(deadline) {
			_, _, _ = procDo("DELETE", lockPath, nil)
			return fmt.Errorf("acquire %s: not holder before deadline", key)
		}
		time.Sleep(20 * time.Millisecond)
	}
	keyPath := fmt.Sprintf("%s/v1/keys/%s?lockRef=%d", base, key, created.LockRef)
	status, data, err = procDo("GET", keyPath, nil)
	if err != nil {
		return err
	}
	if status != http.StatusOK && status != http.StatusNotFound {
		return fmt.Errorf("criticalGet: %d %s", status, data)
	}
	status, data, err = procDo("PUT", keyPath, []byte(fmt.Sprintf("%s-w%d", env.scenario, w)))
	if err != nil {
		return err
	}
	if status != http.StatusNoContent {
		return fmt.Errorf("criticalPut: %d %s", status, data)
	}
	status, data, err = procDo("DELETE", lockPath, nil)
	if err != nil {
		return err
	}
	if status != http.StatusNoContent {
		return fmt.Errorf("release: %d %s", status, data)
	}
	return nil
}

func (env *soakProcEnv) report(wall time.Duration, proc *soakProcReport) soakReport {
	env.stopped.Store(true)
	return soakReport{
		SLO: env.ob.Metrics().SLO(obs.SLOOptions{
			Scenario: env.scenario,
			Latency:  "soak_section_latency",
			Attempts: "soak_sections_total",
			Failures: "soak_failures_total",
			Wall:     wall,
		}),
		Proc: proc,
	}
}

func procDo(method, url string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	resp, err := procHTTP.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data, nil
}

// procMembership mirrors GET /v1/membership.
type procMembership struct {
	Epoch int64    `json:"epoch"`
	Sites []string `json:"sites"`
}

func procMembershipOf(url string) (procMembership, error) {
	status, data, err := procDo("GET", url+"/v1/membership", nil)
	if err != nil {
		return procMembership{}, err
	}
	if status != http.StatusOK {
		return procMembership{}, fmt.Errorf("GET membership: %d %s", status, data)
	}
	var m procMembership
	if err := json.Unmarshal(data, &m); err != nil {
		return procMembership{}, err
	}
	return m, nil
}

func hasProcSite(m procMembership, site string) bool {
	for _, s := range m.Sites {
		if s == site {
			return true
		}
	}
	return false
}

// procReconfigure drives one membership change through a member's admin
// endpoint until the satisfied predicate holds against its view — posting is
// retried through config-log elections and duplicate-proposal refusals, so a
// lost response cannot wedge the script.
func procReconfigure(url, body string, timeout time.Duration, satisfied func(procMembership) bool) error {
	deadline := time.Now().Add(timeout)
	for {
		if m, err := procMembershipOf(url); err == nil && satisfied(m) {
			return nil
		}
		if _, _, err := procDo("POST", url+"/v1/admin/membership", []byte(body)); err == nil {
			if m, err := procMembershipOf(url); err == nil && satisfied(m) {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("reconfigure %s: not applied within %v", body, timeout)
		}
		time.Sleep(300 * time.Millisecond)
	}
}

// procWaitSite waits until url's own membership view does (or does not)
// contain site.
func procWaitSite(url, site string, want bool, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if m, err := procMembershipOf(url); err == nil && hasProcSite(m, site) == want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s: site %s membership never became %t", url, site, want)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// procFreePorts reserves n distinct loopback ports by binding and releasing
// them.
func procFreePorts(n int) ([]int, error) {
	ports := make([]int, n)
	for i := range ports {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		ports[i] = lis.Addr().(*net.TCPAddr).Port
		lis.Close()
	}
	return ports, nil
}
