package bench

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"time"

	"repro/internal/nettrans"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/music"
)

// runTransport compares the per-operation wall-clock cost of the two
// message planes carrying the same protocol stack: the simulated network
// (zero-RTT profile, so the modeled WAN contributes nothing and only the
// transport machinery remains) versus real TCP connections on loopback.
// Both deployments are built through music.NewOverTransport on a wall-clock
// runtime; each Table I operation is timed separately across fresh keys.
//
// With -json the per-op numbers are also written as BENCH_transport.json so
// successive PRs can track the TCP plane's overhead.
func runTransport(opts Options) []Table {
	iters := 300
	if opts.Quick {
		iters = 60
	}

	opts.logf("  transport: simnet loopback")
	simnetOps := measureTransportOps(newSimnetLoopback(), iters)
	opts.logf("  transport: tcp loopback")
	tcpOps := measureTransportOps(newTCPLoopback(), iters)

	tbl := Table{
		ID:    "transport",
		Title: "Per-op wall-clock cost: simulated message plane vs TCP loopback",
		Columns: []string{"operation",
			"simnet mean", "simnet p99", "tcp mean", "tcp p99", "tcp/simnet"},
		Notes: []string{
			fmt.Sprintf("%d sections per backend, fresh key each, 256 B values; both planes run the identical store/lock/core stack", iters),
			"simnet runs zero RTT with NIC/jitter modeling off, so its column is the calibrated CPU cost model made real by the wall clock; the tcp column is genuine socket+codec machinery",
		},
	}
	var results []transportResult
	for _, op := range transportOps {
		s, c := simnetOps[op], tcpOps[op]
		tbl.Rows = append(tbl.Rows, []string{
			op,
			stats.FormatDuration(s.Mean()),
			stats.FormatDuration(s.Quantile(0.99)),
			stats.FormatDuration(c.Mean()),
			stats.FormatDuration(c.Quantile(0.99)),
			fmtRatio(float64(c.Mean()), float64(s.Mean())),
		})
		results = append(results,
			transportResult{Op: op, Backend: "simnet", MeanMicros: int64(s.Mean() / time.Microsecond), P99Micros: int64(s.Quantile(0.99) / time.Microsecond)},
			transportResult{Op: op, Backend: "tcp", MeanMicros: int64(c.Mean() / time.Microsecond), P99Micros: int64(c.Quantile(0.99) / time.Microsecond)},
		)
	}
	if opts.TransportJSON != "" {
		writeTransportJSON(opts, results)
	}
	return []Table{tbl}
}

// transportOps are the Table I operations timed individually.
var transportOps = []string{"createLockRef", "acquireLock", "criticalPut", "criticalGet", "releaseLock"}

// transportBackend is one deployed message plane: a client homed at the
// first site, and a teardown.
type transportBackend struct {
	cl    *music.Client
	close func()
}

// newSimnetLoopback deploys over the simulated network with every inter-site
// RTT forced to zero, on the wall clock.
func newSimnetLoopback() transportBackend {
	sites := []string{"site-a", "site-b", "site-c"}
	p := simnet.NewProfile("loopback", sites...)
	for i, a := range sites {
		for _, b := range sites[i+1:] {
			p.SetRTT(a, b, 0)
		}
	}
	rt := sim.NewReal(1)
	n := simnet.New(rt, simnet.Config{Profile: p, Seed: 1, Bandwidth: -1, JitterFrac: -1})
	c, err := music.NewOverTransport(n, music.TransportConfig{T: time.Minute})
	if err != nil {
		panic(fmt.Sprintf("bench: transport simnet: %v", err))
	}
	return transportBackend{cl: c.Client("site-a"), close: c.Close}
}

// newTCPLoopback deploys three single-node nettrans processes-in-miniature
// on 127.0.0.1 — the multi-process musicd shape inside one benchmark
// process.
func newTCPLoopback() transportBackend {
	sites := []string{"site-a", "site-b", "site-c"}
	rt := sim.NewReal(1)
	listeners := make([]net.Listener, len(sites))
	peers := make([]nettrans.Peer, len(sites))
	for i, site := range sites {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(fmt.Sprintf("bench: transport tcp: %v", err))
		}
		listeners[i] = lis
		peers[i] = nettrans.Peer{ID: transport.NodeID(i), Site: site, Addr: lis.Addr().String()}
	}
	clusters := make([]*music.Cluster, len(peers))
	for i, p := range peers {
		tr, err := nettrans.New(rt, nettrans.Config{Self: p.ID, Peers: peers, Listener: listeners[i]})
		if err != nil {
			panic(fmt.Sprintf("bench: transport tcp: %v", err))
		}
		c, err := music.NewOverTransport(tr, music.TransportConfig{
			T:          time.Minute,
			LocalNodes: []transport.NodeID{p.ID},
		})
		if err != nil {
			panic(fmt.Sprintf("bench: transport tcp: %v", err))
		}
		clusters[i] = c
	}
	return transportBackend{
		cl: clusters[0].Client(sites[0]),
		close: func() {
			for _, c := range clusters {
				c.Close()
			}
		},
	}
}

// measureTransportOps times each Table I operation of a full critical
// section, one fresh key per iteration, on an already-deployed backend.
func measureTransportOps(b transportBackend, iters int) map[string]*stats.Histogram {
	defer b.close()
	hists := make(map[string]*stats.Histogram, len(transportOps))
	for _, op := range transportOps {
		hists[op] = stats.NewHistogram()
	}
	timed := func(op string, fn func() error) {
		start := time.Now()
		if err := fn(); err != nil {
			panic(fmt.Sprintf("bench: transport %s: %v", op, err))
		}
		hists[op].Observe(time.Since(start))
	}
	value := make([]byte, 256)
	for i := 0; i < iters; i++ {
		key := fmt.Sprintf("tp-%d", i)
		var ref music.LockRef
		timed("createLockRef", func() error {
			var err error
			ref, err = b.cl.CreateLockRef(key)
			return err
		})
		timed("acquireLock", func() error {
			holder, err := b.cl.AcquireLock(key, ref)
			if err == nil && !holder {
				err = fmt.Errorf("fresh lockRef %d not granted %q", ref, key)
			}
			return err
		})
		timed("criticalPut", func() error { return b.cl.CriticalPut(key, ref, value) })
		timed("criticalGet", func() error {
			got, err := b.cl.CriticalGet(key, ref)
			if err == nil && len(got) != len(value) {
				err = fmt.Errorf("criticalGet returned %d bytes, want %d", len(got), len(value))
			}
			return err
		})
		timed("releaseLock", func() error { return b.cl.ReleaseLock(key, ref) })
	}
	return hists
}

// transportResult is one row of the BENCH_transport.json artifact.
type transportResult struct {
	Op         string `json:"op"`
	Backend    string `json:"backend"`
	MeanMicros int64  `json:"mean_us"`
	P99Micros  int64  `json:"p99_us"`
}

func writeTransportJSON(opts Options, results []transportResult) {
	doc := struct {
		Experiment string            `json:"experiment"`
		Quick      bool              `json:"quick"`
		Results    []transportResult `json:"results"`
	}{Experiment: "transport", Quick: opts.Quick, Results: results}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("bench: transport json: %v", err))
	}
	data = append(data, '\n')
	if err := os.WriteFile(opts.TransportJSON, data, 0o644); err != nil {
		panic(fmt.Sprintf("bench: transport json: %v", err))
	}
	opts.logf("  transport: wrote %s", opts.TransportJSON)
}
