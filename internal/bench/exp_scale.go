package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/ycsb"
)

// scaleShardCounts is the sweep the tentpole's acceptance criterion reads:
// ops/s must rise monotonically from 1 to 4 shards (≥1.5x at 4).
var scaleShardCounts = []int{1, 2, 4, 8}

// scaleFabric is the scale campaign's latency profile: three sites on a
// fast metro fabric (~500µs inter-site RTT). The point of the experiment is
// executor capacity, not WAN waits — on the paper's IUs profile the 30ms+
// RTTs dominate every critical section and per-site CPU never saturates, so
// shard count would be invisible.
func scaleFabric() *simnet.Profile {
	sites := []string{"metro-a", "metro-b", "metro-c"}
	p := simnet.NewProfile("fabric", sites...)
	for i, a := range sites {
		for _, b := range sites[i+1:] {
			p.SetRTT(a, b, 500*time.Microsecond)
		}
	}
	return p
}

// scaleWorld is one sharded deployment: per site, one store node per shard
// and a site replica whose plane shard i coordinates through node i.
type scaleWorld struct {
	rt   *sim.Virtual
	net  *simnet.Network
	st   *store.Cluster
	reps []*core.Replica // one per site, site-indexed
}

// buildScaleWorld constructs a 3-site deployment with the given per-site
// shard count. NodesPerSite == shards so every plane shard owns a store
// node (and hence a modeled executor pool) of its own.
func buildScaleWorld(shards int, seed int64) *scaleWorld {
	profile := scaleFabric()
	rt := sim.New(seed)
	net := simnet.New(rt, simnet.Config{Profile: profile, NodesPerSite: shards, Seed: seed})
	st := store.New(net, store.Config{RF: 3, Shards: shards})
	w := &scaleWorld{rt: rt, net: net, st: st}
	for _, site := range profile.Sites() {
		nodes := net.NodesInSite(site)
		clients := make([]*store.Client, shards)
		for i := range clients {
			clients[i] = st.Client(nodes[i%len(nodes)])
		}
		w.reps = append(w.reps, core.NewReplicaSharded(clients, core.Config{
			T:             10 * time.Minute,
			OrphanTimeout: 5 * time.Second,
			Mode:          core.ModeQuorum,
		}))
	}
	return w
}

// scaleResult is one row of the BENCH_scale.json artifact. Shards is a
// string because cmd/benchgate keys row identity on string fields and
// treats numeric *_per_sec / *_us fields as metrics.
type scaleResult struct {
	Shards     string  `json:"shards"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	MeanMicros int64   `json:"mean_us"`
	P99Micros  int64   `json:"p99_us"`
}

// measureScale drives the YCSB campaign against one shard count: a fixed
// operation count drained by a closed loop of workers per site, every op a
// full MUSIC critical section over a key drawn uniformly from a
// million-plus keyspace. Uniform (not Zipfian) is deliberate: the tentpole
// measures scale-out of per-site capacity, and a closed-loop Zipfian(0.99)
// draw would convoy every worker onto the hottest lock's FIFO queue,
// capping throughput at the hot key's service rate no matter how many
// shards exist. Contention behaviour is fig9's experiment.
func measureScale(shards int, opts Options) scaleResult {
	w := buildScaleWorld(shards, 99)
	records := 1_250_000
	workersPerSite, totalCount := 200, 40_000
	if opts.Quick {
		workersPerSite, totalCount = 60, 4_000
	}
	workers := workersPerSite * len(w.reps)

	gens := make([]*ycsb.Generator, workers)
	for i := range gens {
		g, err := ycsb.NewGenerator(ycsb.Config{
			Workload:     ycsb.WorkloadUR,
			Records:      records,
			Distribution: ycsb.DistUniform,
		}, int64(5000+i))
		if err != nil {
			panic(fmt.Sprintf("bench: scale ycsb: %v", err))
		}
		gens[i] = g
	}

	var out scaleResult
	if err := w.rt.Run(func() {
		lat := stats.NewHistogram()
		issued := 0
		completed := 0
		done := sim.NewMailbox[struct{}](w.rt)
		start := w.rt.Now()
		for wi := 0; wi < workers; wi++ {
			wi := wi
			rep := w.reps[wi%len(w.reps)]
			w.rt.Go(func() {
				defer done.Send(struct{}{})
				for {
					if issued >= totalCount {
						return
					}
					issued++
					op := gens[wi].Next()
					opStart := w.rt.Now()
					if _, err := runScaleOp(w.rt, rep, op); err != nil {
						w.rt.Sleep(time.Duration(100+w.rt.Rand().Intn(400)) * time.Millisecond)
						continue
					}
					completed++
					lat.Observe(w.rt.Now() - opStart)
				}
			})
		}
		for wi := 0; wi < workers; wi++ {
			if _, err := done.RecvTimeout(time.Hour); err != nil {
				panic("bench: scale workers stuck")
			}
		}
		makespan := w.rt.Now() - start
		out = scaleResult{
			Shards:     fmt.Sprintf("%d", shards),
			OpsPerSec:  float64(completed) / makespan.Seconds(),
			MeanMicros: lat.Mean().Microseconds(),
			P99Micros:  lat.Quantile(0.99).Microseconds(),
		}
	}); err != nil {
		panic(fmt.Sprintf("bench: scale: %v", err))
	}
	return out
}

// runScaleOp executes one YCSB op as a MUSIC critical section on the
// worker's site replica.
func runScaleOp(rt *sim.Virtual, rep *core.Replica, op ycsb.Op) (collided bool, err error) {
	ref, err := rep.CreateLockRef(op.Key)
	if err != nil {
		return false, err
	}
	for {
		ok, acqErr := rep.AcquireLock(op.Key, ref)
		if acqErr != nil {
			return collided, acqErr
		}
		if ok {
			break
		}
		collided = true
		rt.Sleep(5 * time.Millisecond)
	}
	if op.Kind == ycsb.Update {
		if err := rep.CriticalPut(op.Key, ref, op.Value); err != nil {
			return collided, err
		}
	} else {
		if _, err := rep.CriticalGet(op.Key, ref); err != nil {
			return collided, err
		}
	}
	return collided, rep.ReleaseLock(op.Key, ref)
}

// runScale reproduces the scale-out campaign: the same YCSB workload at
// shard counts 1/2/4/8, reporting throughput and tail latency per count.
func runScale(opts Options) []Table {
	counts := scaleShardCounts
	if opts.Quick {
		counts = []int{1, 4}
	}
	t := Table{
		ID:      "scale",
		Title:   "Sharded lock/data plane: YCSB UR over 1.25M uniform keys, fabric profile",
		Columns: []string{"Shards/site", "ops/s", "mean", "p99", "vs 1 shard"},
		Notes: []string{
			"closed loop, fixed op count drained across 3 sites; every op is a full critical section",
			"acceptance: ops/s monotone 1→4 shards, ≥1.5x at 4",
		},
	}
	var results []scaleResult
	var base float64
	for _, shards := range counts {
		opts.logf("  scale: %d shard(s) per site", shards)
		r := measureScale(shards, opts)
		results = append(results, r)
		if base == 0 {
			base = r.OpsPerSec
		}
		t.Rows = append(t.Rows, []string{
			r.Shards,
			fmtTP(r.OpsPerSec),
			stats.FormatDuration(time.Duration(r.MeanMicros) * time.Microsecond),
			stats.FormatDuration(time.Duration(r.P99Micros) * time.Microsecond),
			fmt.Sprintf("%.2fx", r.OpsPerSec/base),
		})
	}
	if opts.ScaleJSON != "" {
		writeScaleJSON(opts, results)
	}
	return []Table{t}
}

func writeScaleJSON(opts Options, results []scaleResult) {
	doc := struct {
		Experiment string        `json:"experiment"`
		Quick      bool          `json:"quick"`
		Results    []scaleResult `json:"results"`
	}{Experiment: "scale", Quick: opts.Quick, Results: results}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("bench: scale json: %v", err))
	}
	data = append(data, '\n')
	if err := os.WriteFile(opts.ScaleJSON, data, 0o644); err != nil {
		panic(fmt.Sprintf("bench: scale json: %v", err))
	}
	opts.logf("  scale: wrote %s", opts.ScaleJSON)
}
