package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/crdb"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/zk"
)

// musicWorld is a fresh MUSIC deployment for one measurement: each store
// node hosts a colocated MUSIC replica (Fig 1), and load-generator workers
// bind to their site's replicas.
type musicWorld struct {
	rt   *sim.Virtual
	net  *simnet.Network
	st   *store.Cluster
	obs  *obs.Obs        // nil unless built traced
	reps []*core.Replica // one per node, node-indexed
}

// buildMUSIC constructs the deployment. T is sized generously so long
// critical sections (batch 1000 × quorum put) never hit the expiry guard.
func buildMUSIC(profile *simnet.Profile, nodesPerSite int, mode core.Mode, seed int64, observer func(core.Op, time.Duration)) *musicWorld {
	return buildMUSICWorld(profile, nodesPerSite, mode, seed, observer, false)
}

// buildMUSICTraced is buildMUSIC with the observability subsystem on; the
// trace and fig5b experiments read span trees and per-span aggregates off
// w.obs instead of threading a core Observer through.
func buildMUSICTraced(profile *simnet.Profile, nodesPerSite int, mode core.Mode, seed int64) *musicWorld {
	return buildMUSICWorld(profile, nodesPerSite, mode, seed, nil, true)
}

func buildMUSICWorld(profile *simnet.Profile, nodesPerSite int, mode core.Mode, seed int64, observer func(core.Op, time.Duration), traced bool) *musicWorld {
	rt := sim.New(seed)
	var ob *obs.Obs
	if traced {
		ob = obs.New(rt, obs.Options{})
	}
	net := simnet.New(rt, simnet.Config{Profile: profile, NodesPerSite: nodesPerSite, Seed: seed, Obs: ob})
	st := store.New(net, store.Config{RF: 3})
	w := &musicWorld{rt: rt, net: net, st: st, obs: ob}
	for _, id := range net.Nodes() {
		w.reps = append(w.reps, core.NewReplica(st.Client(id), core.Config{
			T:             10 * time.Minute,
			OrphanTimeout: 5 * time.Second,
			Mode:          mode,
			Observer:      observer,
		}))
	}
	return w
}

// replicaFor returns the MUSIC replica a worker at the given index uses:
// workers are spread round-robin across all nodes (and hence sites).
func (w *musicWorld) replicaFor(worker int) *core.Replica {
	return w.reps[worker%len(w.reps)]
}

// runCS executes one full MUSIC critical section over key: createLockRef,
// acquire (polling), batch criticalPuts of value, release — the Fig 4/6
// write unit. Keys are per-worker, so acquisition succeeds immediately.
func runCS(rt *sim.Virtual, rep *core.Replica, key string, batch int, value []byte) error {
	ref, err := rep.CreateLockRef(key)
	if err != nil {
		return err
	}
	for {
		ok, err := rep.AcquireLock(key, ref)
		if err != nil {
			return err
		}
		if ok {
			break
		}
		rt.Sleep(time.Millisecond)
	}
	for i := 0; i < batch; i++ {
		if err := rep.CriticalPut(key, ref, value); err != nil {
			return err
		}
	}
	return rep.ReleaseLock(key, ref)
}

// zkWorld is a fresh ZooKeeper-baseline deployment.
type zkWorld struct {
	rt  *sim.Virtual
	net *simnet.Network
	c   *zk.Cluster
}

func buildZK(profile *simnet.Profile, seed int64) (*zkWorld, error) {
	rt := sim.New(seed)
	net := simnet.New(rt, simnet.Config{Profile: profile, Seed: seed})
	c, err := zk.New(net, net.Nodes())
	if err != nil {
		return nil, err
	}
	return &zkWorld{rt: rt, net: net, c: c}, nil
}

// crdbWorld is a fresh CockroachDB-baseline deployment.
type crdbWorld struct {
	rt  *sim.Virtual
	net *simnet.Network
	c   *crdb.Cluster
}

func buildCRDB(profile *simnet.Profile, seed int64) (*crdbWorld, error) {
	rt := sim.New(seed)
	net := simnet.New(rt, simnet.Config{Profile: profile, Seed: seed})
	c, err := crdb.New(net, net.Nodes())
	if err != nil {
		return nil, err
	}
	return &crdbWorld{rt: rt, net: net, c: c}, nil
}

// value returns a payload of the given size.
func value(size int) []byte {
	v := make([]byte, size)
	for i := range v {
		v[i] = byte('a' + i%26)
	}
	return v
}

// fmtBytes renders a data size the way the paper labels its x-axes.
func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
