package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// crdbCSLatency measures the mean latency of one CockroachDB-recipe
// critical section (§X-B3): lock-acquiring txn, `batch` per-update
// exclusive txns, lock-releasing txn — each costing two consensus rounds.
func crdbCSLatency(batch, valSize, iters int, opts Options) time.Duration {
	w, err := buildCRDB(simnet.ProfileIUs, 17)
	if err != nil {
		panic(fmt.Sprintf("bench: crdb build: %v", err))
	}
	val := value(valSize)
	var mean time.Duration
	if err := w.rt.Run(func() {
		if _, err := w.c.Raft().WaitForLeader(time.Minute); err != nil {
			panic(fmt.Sprintf("bench: crdb leader: %v", err))
		}
		cl := w.c.Client(0)
		res := measureLatency(w.rt, iters, 1, func(i int) error {
			lockKey := fmt.Sprintf("lock-%d", i)
			owner := "bench"
			if err := cl.AcquireCS(lockKey, owner); err != nil {
				return err
			}
			for b := 0; b < batch; b++ {
				if err := cl.UpdateCS(lockKey, owner, fmt.Sprintf("k-%d-%d", i, b), val); err != nil {
					return err
				}
			}
			return cl.ReleaseCS(lockKey, owner)
		})
		if res.Errors > 0 {
			panic(fmt.Sprintf("bench: crdb cs: %d errors", res.Errors))
		}
		mean = res.Hist.Mean()
	}); err != nil {
		panic(fmt.Sprintf("bench: crdb latency: %v", err))
	}
	return mean
}

// musicCSLatency measures the mean latency of one MUSIC critical section
// with `batch` criticalPuts.
func musicCSLatency(batch, valSize, iters int, opts Options) time.Duration {
	w := buildMUSIC(simnet.ProfileIUs, 1, core.ModeQuorum, 17, nil)
	val := value(valSize)
	var mean time.Duration
	mustRun(w, func() {
		res := measureLatency(w.rt, iters, 1, func(i int) error {
			return runCS(w.rt, w.reps[0], fmt.Sprintf("k-%d", i), batch, val)
		})
		if res.Errors > 0 {
			panic(fmt.Sprintf("bench: music cs: %d errors", res.Errors))
		}
		mean = res.Hist.Mean()
	})
	return mean
}

func crdbIters(batch int, opts Options) int {
	if opts.Quick {
		return 3
	}
	switch {
	case batch >= 1000:
		return 3
	case batch >= 100:
		return 5
	default:
		return 10
	}
}

// runFig7a reproduces Fig 7(a): single-thread critical-section latency vs
// batch size, MUSIC vs the CockroachDB recipe.
func runFig7a(opts Options) []Table {
	t := Table{
		ID:      "fig7a",
		Title:   "Critical-section latency vs batch size (single thread, IUs, 10B)",
		Columns: []string{"Batch", "MUSIC", "CockroachDB CS", "Cdb/MUSIC"},
		Notes: []string{
			"paper: MUSIC 2-4x faster; §X-B4 predicts 2·x·C vs 2C+(x+1)·Q ≈ 2x for large x",
		},
	}
	batches := []int{1, 10, 100, 1000}
	if opts.Quick {
		batches = []int{1, 10, 100}
	}
	for _, batch := range batches {
		opts.logf("  fig7a: batch %d", batch)
		iters := crdbIters(batch, opts)
		music := musicCSLatency(batch, 10, iters, opts)
		cdb := crdbCSLatency(batch, 10, iters, opts)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", batch),
			stats.FormatDuration(music), stats.FormatDuration(cdb),
			fmt.Sprintf("%.2fx", float64(cdb)/float64(music)),
		})
	}
	return []Table{t}
}

// runFig7b reproduces Fig 7(b): the same comparison vs data size, batch 100.
func runFig7b(opts Options) []Table {
	t := Table{
		ID:      "fig7b",
		Title:   "Critical-section latency vs data size (single thread, IUs, batch 100)",
		Columns: []string{"Data size", "MUSIC", "CockroachDB CS", "Cdb/MUSIC"},
		Notes: []string{
			"paper: MUSIC stays 2-4x faster as data grows",
		},
	}
	sizes := []int{10, 1 << 10, 16 << 10, 256 << 10}
	if opts.Quick {
		sizes = []int{10, 16 << 10}
	}
	for _, size := range sizes {
		opts.logf("  fig7b: size %s", fmtBytes(size))
		iters := crdbIters(100, opts)
		music := musicCSLatency(100, size, iters, opts)
		cdb := crdbCSLatency(100, size, iters, opts)
		t.Rows = append(t.Rows, []string{
			fmtBytes(size),
			stats.FormatDuration(music), stats.FormatDuration(cdb),
			fmt.Sprintf("%.2fx", float64(cdb)/float64(music)),
		})
	}
	return []Table{t}
}
