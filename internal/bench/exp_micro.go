package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// runTable2 prints the latency-profile matrix (Table II).
func runTable2(opts Options) []Table {
	t := Table{
		ID:      "table2",
		Title:   "Latency profiles used for 3-site deployments",
		Columns: []string{"Profile", "Site 1", "Site 2", "Site 3", "RTT 1-2", "RTT 1-3", "RTT 2-3"},
	}
	for _, p := range simnet.Profiles() {
		s := p.Sites()
		t.Rows = append(t.Rows, []string{
			p.Name(), s[0], s[1], s[2],
			stats.FormatDuration(p.RTT(s[0], s[1])),
			stats.FormatDuration(p.RTT(s[0], s[2])),
			stats.FormatDuration(p.RTT(s[1], s[2])),
		})
	}
	return []Table{t}
}

// throughputDurations returns (warmup, window) per mode.
func throughputDurations(opts Options) (time.Duration, time.Duration) {
	if opts.Quick {
		return 500 * time.Millisecond, 1500 * time.Millisecond
	}
	return time.Second, 5 * time.Second
}

// measureMUSICThroughput measures critical sections per second for the
// given mode, with one CS = lockRef + acquire + batch puts + release.
func measureMUSICThroughput(profile *simnet.Profile, nodesPerSite int, mode core.Mode, workersPerNode, batch, valSize int, opts Options) tpResult {
	w := buildMUSIC(profile, nodesPerSite, mode, 42, nil)
	val := value(valSize)
	warm, window := throughputDurations(opts)
	var res tpResult
	if err := w.rt.Run(func() {
		workers := workersPerNode * len(w.reps)
		res = measureThroughput(w.rt, workers, warm, window, func(worker, iter int) error {
			rep := w.replicaFor(worker)
			key := fmt.Sprintf("key-%04d", worker)
			return runCS(w.rt, rep, key, batch, val)
		})
	}); err != nil {
		panic(fmt.Sprintf("bench: music throughput: %v", err))
	}
	return res
}

// measureCassaEVThroughput measures plain eventual writes per second — the
// performance upper bound (§VIII-b).
func measureCassaEVThroughput(profile *simnet.Profile, opts Options) tpResult {
	w := buildMUSIC(profile, 1, core.ModeQuorum, 42, nil)
	val := value(10)
	warm, window := throughputDurations(opts)
	var res tpResult
	if err := w.rt.Run(func() {
		workers := opts.workers() * len(w.reps)
		res = measureThroughput(w.rt, workers, warm, window, func(worker, iter int) error {
			rep := w.replicaFor(worker)
			return rep.Put(fmt.Sprintf("key-%04d", worker), val)
		})
	}); err != nil {
		panic(fmt.Sprintf("bench: cassaev throughput: %v", err))
	}
	return res
}

// runFig4a reproduces Fig 4(a): CassaEV / MUSIC / MSCP peak throughput
// across the three latency profiles.
func runFig4a(opts Options) []Table {
	t := Table{
		ID:      "fig4a",
		Title:   "Peak write throughput (op/s) by latency profile",
		Columns: []string{"Profile", "CassaEV", "MUSIC", "MSCP", "MUSIC/MSCP"},
		Notes: []string{
			"paper: CassaEV ≈41K; MUSIC ≈885 (IUs); MUSIC ≈1.3x MSCP across profiles",
		},
	}
	for _, p := range simnet.Profiles() {
		opts.logf("  fig4a: profile %s", p.Name())
		ev := measureCassaEVThroughput(p, opts)
		music := measureMUSICThroughput(p, 1, core.ModeQuorum, opts.workers(), 1, 10, opts)
		mscp := measureMUSICThroughput(p, 1, core.ModeLWT, opts.workers(), 1, 10, opts)
		t.Rows = append(t.Rows, []string{
			p.Name(), fmtTP(ev.PerSec), fmtTP(music.PerSec), fmtTP(mscp.PerSec),
			fmtRatio(music.PerSec, mscp.PerSec),
		})
	}
	return []Table{t}
}

// runFig4b reproduces Fig 4(b): throughput vs cluster size on IUs, RF 3,
// keys sharded across all nodes.
func runFig4b(opts Options) []Table {
	t := Table{
		ID:      "fig4b",
		Title:   "Peak throughput (op/s) vs cluster size, IUs, fully sharded",
		Columns: []string{"Nodes", "MUSIC", "MSCP", "MUSIC/MSCP"},
		Notes: []string{
			"paper: both scale with nodes; MUSIC outperforms MSCP by ~30-36%",
		},
	}
	sizes := []int{1, 2, 3} // nodes per site → 3, 6, 9 total
	if opts.Quick {
		sizes = []int{1, 3}
	}
	for _, nps := range sizes {
		opts.logf("  fig4b: %d nodes", nps*3)
		music := measureMUSICThroughput(simnet.ProfileIUs, nps, core.ModeQuorum, opts.workers(), 1, 10, opts)
		mscp := measureMUSICThroughput(simnet.ProfileIUs, nps, core.ModeLWT, opts.workers(), 1, 10, opts)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", nps*3), fmtTP(music.PerSec), fmtTP(mscp.PerSec),
			fmtRatio(music.PerSec, mscp.PerSec),
		})
	}
	return []Table{t}
}

// latencyIters returns (measured, discarded) iteration counts.
func latencyIters(opts Options) (int, int) {
	if opts.Quick {
		return 10, 2
	}
	return 40, 5
}

// runFig5a reproduces Fig 5(a): single-thread mean latency per profile.
func runFig5a(opts Options) []Table {
	t := Table{
		ID:      "fig5a",
		Title:   "Mean operation latency by profile (single thread)",
		Columns: []string{"Profile", "CassaEV", "MUSIC", "MSCP", "MSCP/MUSIC"},
		Notes: []string{
			"paper: MUSIC ≈30% below MSCP on cross-region profiles (IUs, IUsEu)",
		},
	}
	iters, discard := latencyIters(opts)
	for _, p := range simnet.Profiles() {
		opts.logf("  fig5a: profile %s", p.Name())
		var evMean, musicMean, mscpMean time.Duration
		{
			w := buildMUSIC(p, 1, core.ModeQuorum, 7, nil)
			val := value(10)
			mustRun(w, func() {
				ev := measureLatency(w.rt, iters, discard, func(i int) error {
					return w.reps[0].Put("k", val)
				})
				evMean = ev.Hist.Mean()
				music := measureLatency(w.rt, iters, discard, func(i int) error {
					return runCS(w.rt, w.reps[0], fmt.Sprintf("mk-%d", i), 1, val)
				})
				musicMean = music.Hist.Mean()
			})
		}
		{
			w := buildMUSIC(p, 1, core.ModeLWT, 7, nil)
			val := value(10)
			mustRun(w, func() {
				mscp := measureLatency(w.rt, iters, discard, func(i int) error {
					return runCS(w.rt, w.reps[0], fmt.Sprintf("sk-%d", i), 1, val)
				})
				mscpMean = mscp.Hist.Mean()
			})
		}
		t.Rows = append(t.Rows, []string{
			p.Name(),
			stats.FormatDuration(evMean),
			stats.FormatDuration(musicMean),
			stats.FormatDuration(mscpMean),
			fmt.Sprintf("%.2fx", float64(mscpMean)/float64(musicMean)),
		})
	}
	return []Table{t}
}

// spanMean pulls one span name's mean duration off the tracer aggregates.
func spanMean(ns []obs.NameStat, name string) time.Duration {
	for _, s := range ns {
		if s.Name == name {
			return s.Mean
		}
	}
	return 0
}

// runFig5b reproduces Fig 5(b): the per-operation latency breakdown of a
// MUSIC critical section on IUs, with the MSCP LWT put alongside. The
// breakdown is derived from the causal tracer's per-span aggregates — the
// same spans `-exp trace` renders — rather than a separate Observer hook.
func runFig5b(opts Options) []Table {
	iters, discard := latencyIters(opts)

	wm := buildMUSICTraced(simnet.ProfileIUs, 1, core.ModeQuorum, 7)
	mustRun(wm, func() {
		measureLatency(wm.rt, iters, discard, func(i int) error {
			return runCS(wm.rt, wm.reps[0], fmt.Sprintf("k-%d", i), 1, value(10))
		})
	})
	musicStats := wm.obs.Tracer().StatsByName()

	ws := buildMUSICTraced(simnet.ProfileIUs, 1, core.ModeLWT, 7)
	mustRun(ws, func() {
		measureLatency(ws.rt, iters, discard, func(i int) error {
			return runCS(ws.rt, ws.reps[0], fmt.Sprintf("k-%d", i), 1, value(10))
		})
	})
	mscpStats := ws.obs.Tracer().StatsByName()

	t := Table{
		ID:      "fig5b",
		Title:   "MUSIC operation latency breakdown, IUs (L=local, Q=quorum, P=Paxos/LWT)",
		Columns: []string{"Operation", "Kind", "Mean latency"},
		Notes: []string{
			"paper: create/release ≈219-230ms (4 RTTs); peek ≈0.67ms; grant ≈55ms; put(Q) ≈93ms; put(P) ≈270ms",
			"means are aggregated over the causal spans recorded by internal/obs",
		},
	}
	rows := []struct {
		name string
		kind string
		d    time.Duration
	}{
		{"createLockRef", "P", spanMean(musicStats, "music.createLockRef")},
		{"acquireLock peek", "L", spanMean(musicStats, "music.acquireLock.peek")},
		{"acquireLock grant", "Q", spanMean(musicStats, "music.acquireLock.grant")},
		{"criticalPut (MUSIC)", "Q", spanMean(musicStats, "music.criticalPut")},
		{"criticalPut (MSCP)", "P", spanMean(mscpStats, "music.criticalPut")},
		{"releaseLock", "P", spanMean(musicStats, "music.releaseLock")},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.name, r.kind, stats.FormatDuration(r.d)})
	}
	return []Table{t}
}

// runTrace renders the causal span tree of one complete MUSIC critical
// section per latency profile — the observability subsystem end to end.
// Each line is one span: indented name, duration, offset from the trace
// start, and any annotations.
func runTrace(opts Options) []Table {
	var out []Table
	for _, p := range simnet.Profiles() {
		opts.logf("  trace: profile %s", p.Name())
		w := buildMUSICTraced(p, 1, core.ModeQuorum, 7)
		var id obs.TraceID
		mustRun(w, func() {
			// Warm the lock row so the traced section shows the
			// steady-state paths, not first-touch misses.
			if err := runCS(w.rt, w.reps[0], "traced", 1, value(10)); err != nil {
				panic(fmt.Sprintf("bench: trace warmup: %v", err))
			}
			root := w.obs.Tracer().StartRoot("criticalSection")
			err := runCS(w.rt, w.reps[0], "traced", 1, value(10))
			root.EndErr(err)
			id = root.Trace
		})
		var buf strings.Builder
		w.obs.Tracer().WriteTree(&buf, id)
		t := Table{
			ID:      "trace-" + p.Name(),
			Title:   "Causal span tree of one critical section, profile " + p.Name(),
			Columns: []string{"span (duration, +offset from trace start, annotations)"},
		}
		for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
			t.Rows = append(t.Rows, []string{line})
		}
		out = append(out, t)
	}
	return out
}

// mustRun propagates simulator failures as panics (benchmark plumbing, not
// measured behaviour).
func mustRun(w *musicWorld, fn func()) {
	if err := w.rt.Run(fn); err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
}
