package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaosnet"
	"repro/internal/nettrans"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/music"
)

// runSoak drives production-shaped scenarios against the real TCP message
// plane with chaosnet fault injection in the dial path, and reports service
// levels (availability, latency percentiles, retry/failover counts) per
// scenario from the internal/obs registry. Each scenario gets a fresh
// three-site loopback deployment and a fresh metrics registry, so reports
// never bleed into each other.
//
// The scenarios:
//
//   - storm: a hot-key contention storm — every worker fights over three
//     keys while a mild all-pairs latency fault stretches the wire.
//   - flashcrowd: the worker population ramps ×8 and back down, with a
//     brief loss window striking at peak load.
//   - skewshift: Zipfian traffic over 48 keys whose hot set rotates twice
//     mid-run, under a single-pair latency fault.
//   - restarts: a real musicd OS process is SIGKILLed mid-run and restarted
//     on the same identity; the report records the rows the rejoined process
//     pulled back through the startup state-transfer path.
//   - reconfig: real processes again — a spare site joins, a member retires,
//     and a crashed member is replaced through POST /v1/admin/membership,
//     all while the workload keeps running.
//
// With -json the per-scenario SLO reports are written as BENCH_soak.json.
func runSoak(opts Options) []Table {
	dur := 6 * time.Second
	if opts.Quick {
		dur = 1500 * time.Millisecond
	}

	tbl := Table{
		ID:    "soak",
		Title: "Soak scenarios over TCP + chaosnet: SLO report per scenario",
		Columns: []string{"scenario", "sections", "avail", "p50", "p99", "p999",
			"retries", "failovers", "drops", "resets"},
		Notes: []string{
			fmt.Sprintf("storm/flashcrowd/skewshift run %v against a fresh in-process 3-site TCP loopback deployment with chaosnet faults in the dial path", dur),
			"restarts and reconfig deploy real musicd OS processes and drive the REST API: restarts kill -9s one process and verifies its state-transfer catch-up; reconfig joins/retires/replaces sites live",
			"avail = successful sections / attempts; a section failing at one site is re-driven at the next serving site (counted as a failover, not a failure)",
		},
	}
	addRow := func(id string, rep soakReport) {
		d := func(us int64) string { return stats.FormatDuration(time.Duration(us) * time.Microsecond) }
		tbl.Rows = append(tbl.Rows, []string{
			id,
			fmt.Sprintf("%d", rep.SLO.Attempts),
			fmt.Sprintf("%.3f", rep.SLO.Availability),
			d(rep.SLO.P50Micros), d(rep.SLO.P99Micros), d(rep.SLO.P999Micros),
			fmt.Sprintf("%d", rep.SLO.Retries),
			fmt.Sprintf("%d", rep.SLO.Failovers),
			fmt.Sprintf("%d", rep.Faults.Drops),
			fmt.Sprintf("%d", rep.Faults.Resets),
		})
	}
	var reports []soakReport
	for _, sc := range soakScenarios(opts, dur) {
		opts.logf("  soak: %s", sc.id)
		rep := runSoakScenario(sc, dur)
		reports = append(reports, rep)
		addRow(sc.id, rep)
	}
	for _, rep := range runSoakProcScenarios(opts) {
		reports = append(reports, rep)
		addRow(rep.SLO.Scenario, rep)
	}
	if opts.SoakJSON != "" {
		writeSoakJSON(opts, reports)
	}
	return []Table{tbl}
}

var soakSites = []string{"site-a", "site-b", "site-c"}

// soakScenario is one production-shaped workload plus its fault schedule.
type soakScenario struct {
	id    string
	sched chaosnet.Schedule
	drive func(env *soakEnv)
}

func soakScenarios(opts Options, dur time.Duration) []soakScenario {
	scale := func(full int) int {
		if opts.Quick {
			return (full + 1) / 2
		}
		return full
	}
	return []soakScenario{
		{
			id: "storm",
			sched: chaosnet.Schedule{Sites: soakSites, Events: []chaosnet.Event{
				{Class: chaosnet.ClassLatency, At: 0, For: dur, Delay: 2 * time.Millisecond, Jitter: time.Millisecond},
			}},
			drive: func(env *soakEnv) {
				env.runWorkers(scale(18), dur, func(w, iter int, rng *rand.Rand) {
					env.section(w, fmt.Sprintf("hot-%d", iter%3))
				})
			},
		},
		{
			id: "flashcrowd",
			sched: chaosnet.Schedule{Sites: soakSites, Events: []chaosnet.Event{
				{Class: chaosnet.ClassLoss, At: dur / 3, For: dur / 6, Rate: 0.05},
			}},
			drive: func(env *soakEnv) {
				work := func(w, iter int, rng *rand.Rand) {
					env.section(w, fmt.Sprintf("fc-%d", rng.Intn(12)))
				}
				env.runWorkers(scale(3), dur/3, work)
				env.runWorkers(scale(24), dur/3, work)
				env.runWorkers(scale(6), dur/3, work)
			},
		},
		{
			id: "skewshift",
			sched: chaosnet.Schedule{Sites: soakSites, Events: []chaosnet.Event{
				{Class: chaosnet.ClassLatency, At: dur / 4, For: dur / 2,
					A: soakSites[0], B: soakSites[2], Delay: 4 * time.Millisecond, Jitter: 2 * time.Millisecond},
			}},
			drive: func(env *soakEnv) {
				start := env.rt.Now()
				env.runWorkers(scale(12), dur, func(w, iter int, rng *rand.Rand) {
					zipf := rand.NewZipf(rng, 1.2, 1, 47)
					phase := int(3 * (env.rt.Now() - start) / dur)
					key := (int(zipf.Uint64()) + 16*phase) % 48
					env.section(w, fmt.Sprintf("zk-%02d", key))
				})
			},
		},
	}
}

// soakRecorder is the driver-side clock, metrics registry and stop flag
// shared by the in-process and process-backed scenario environments.
type soakRecorder struct {
	rt      *sim.Real
	ob      *obs.Obs
	stopped atomic.Bool
}

// soakEnv is one deployed in-process scenario: three single-node MUSIC
// clusters over loopback TCP, dials routed through the chaosnet injector,
// one failover client per site, and a private metrics registry.
type soakEnv struct {
	soakRecorder
	scenario string
	inj      *chaosnet.Injector
	clusters []*music.Cluster
	clients  []*music.Client
}

func newSoakEnv(scenario string, sched chaosnet.Schedule) *soakEnv {
	rt := sim.NewReal(1)
	ob := obs.New(rt, obs.Options{})
	inj := chaosnet.NewInjector(rt, sched)
	env := &soakEnv{soakRecorder: soakRecorder{rt: rt, ob: ob}, scenario: scenario, inj: inj}

	listeners := make([]net.Listener, len(soakSites))
	peers := make([]nettrans.Peer, len(soakSites))
	for i, site := range soakSites {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(fmt.Sprintf("bench: soak: %v", err))
		}
		listeners[i] = lis
		peers[i] = nettrans.Peer{ID: transport.NodeID(i), Site: site, Addr: lis.Addr().String()}
	}
	for i, p := range peers {
		tr, err := nettrans.New(rt, nettrans.Config{
			Self:         p.ID,
			Peers:        peers,
			Listener:     listeners[i],
			RPCTimeout:   500 * time.Millisecond,
			DialTimeout:  200 * time.Millisecond,
			BackoffFloor: 10 * time.Millisecond,
			BackoffCeil:  80 * time.Millisecond,
			Dial:         inj.Dial(p.Site),
		})
		if err != nil {
			panic(fmt.Sprintf("bench: soak: %v", err))
		}
		c, err := music.NewOverTransport(tr, music.TransportConfig{
			T:          2 * time.Second,
			LocalNodes: []transport.NodeID{p.ID},
			Obs:        ob,
		})
		if err != nil {
			panic(fmt.Sprintf("bench: soak: %v", err))
		}
		env.clusters = append(env.clusters, c)
		env.clients = append(env.clients, c.Client(p.Site, music.WithRetry(music.RetryPolicy{
			Attempts:    3,
			BaseBackoff: 10 * time.Millisecond,
			MaxBackoff:  100 * time.Millisecond,
		})))
	}
	return env
}

func (env *soakEnv) close() {
	for _, c := range env.clusters {
		c.Close()
	}
}

// runWorkers drives n closed-loop workers for dur, joining them before
// returning (fault windows are bounded, so in-flight sections drain).
func (env *soakEnv) runWorkers(n int, dur time.Duration, work func(w, iter int, rng *rand.Rand)) {
	soakWorkers(env.rt, &env.stopped, n, dur, work)
}

// soakWorkers is the closed-loop worker pool both scenario environments use.
func soakWorkers(rt *sim.Real, stopped *atomic.Bool, n int, dur time.Duration, work func(w, iter int, rng *rand.Rand)) {
	deadline := rt.Now() + dur
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			for iter := 0; rt.Now() < deadline && !stopped.Load(); iter++ {
				work(w, iter, rng)
			}
		}()
	}
	wg.Wait()
}

// section runs one Get+Put critical section from worker w's home site and
// records it in the scenario's SLO series. A retryably failed section is
// re-driven once through the next site's deployment — the front-end re-route
// of §III-A ("retry, possibly at another MUSIC replica"): each process here
// hosts one site, so cross-site failover happens above the client, exactly
// where a production load balancer would do it.
func (env *soakEnv) section(w int, key string) {
	home := w % len(env.clients)
	m := env.ob.Metrics()
	labels := obs.Labels{"scenario": env.scenario}
	body := func(cs *music.CriticalSection) error {
		if _, err := cs.Get(); err != nil {
			return err
		}
		return cs.Put([]byte(fmt.Sprintf("%s-w%d", env.scenario, w)))
	}
	start := env.rt.Now()
	err := env.clients[home].RunCritical(key, body)
	if err != nil && music.IsRetryable(err) {
		next := (home + 1) % len(env.clients)
		m.Counter("music_failover_total", obs.Labels{"from": soakSites[home], "to": soakSites[next]}).Inc()
		err = env.clients[next].RunCritical(key, body)
	}
	m.Counter("soak_sections_total", labels).Inc()
	if err != nil {
		m.Counter("soak_failures_total", labels).Inc()
		return
	}
	m.Histogram("soak_section_latency", labels).Observe(env.rt.Now() - start)
}

// soakReport is one scenario's JSON artifact entry. Proc is set only by the
// process-backed scenarios (restarts, reconfig) and records what the script
// did to the deployment.
type soakReport struct {
	SLO    obs.SLOReport   `json:"slo"`
	Faults chaosnet.Counts `json:"faults"`
	Proc   *soakProcReport `json:"proc,omitempty"`
}

func runSoakScenario(sc soakScenario, dur time.Duration) soakReport {
	env := newSoakEnv(sc.id, sc.sched)
	defer env.close()
	env.inj.Start()
	start := env.rt.Now()
	sc.drive(env)
	wall := env.rt.Now() - start
	env.stopped.Store(true)
	return soakReport{
		SLO: env.ob.Metrics().SLO(obs.SLOOptions{
			Scenario: sc.id,
			Latency:  "soak_section_latency",
			Attempts: "soak_sections_total",
			Failures: "soak_failures_total",
			Wall:     wall,
		}),
		Faults: env.inj.Counts(),
	}
}

func writeSoakJSON(opts Options, reports []soakReport) {
	doc := struct {
		Experiment string       `json:"experiment"`
		Quick      bool         `json:"quick"`
		Reports    []soakReport `json:"reports"`
	}{Experiment: "soak", Quick: opts.Quick, Reports: reports}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("bench: soak json: %v", err))
	}
	data = append(data, '\n')
	if err := os.WriteFile(opts.SoakJSON, data, 0o644); err != nil {
		panic(fmt.Sprintf("bench: soak json: %v", err))
	}
	opts.logf("  soak: wrote %s", opts.SoakJSON)
}
