package bench

import (
	"strconv"
	"strings"
	"testing"
)

// quickOpts keeps package tests fast.
var quickOpts = Options{Quick: true, Workers: 30}

func findTable(t *testing.T, tables []Table, id string) Table {
	t.Helper()
	for _, tb := range tables {
		if tb.ID == id {
			return tb
		}
	}
	t.Fatalf("table %s missing", id)
	return Table{}
}

// parseTP turns a formatted throughput cell back into a float.
func parseTP(t *testing.T, s string) float64 {
	t.Helper()
	mult := 1.0
	if strings.HasSuffix(s, "K") {
		mult = 1000
		s = strings.TrimSuffix(s, "K")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v * mult
}

// parseLat turns a formatted latency cell into milliseconds.
func parseLat(t *testing.T, s string) float64 {
	t.Helper()
	switch {
	case strings.HasSuffix(s, "µs"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "µs"), 64)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v / 1000
	case strings.HasSuffix(s, "ms"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "ms"), 64)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	case strings.HasSuffix(s, "s"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "s"), 64)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v * 1000
	}
	t.Fatalf("unrecognized latency %q", s)
	return 0
}

func TestRegistryAndRunValidation(t *testing.T) {
	if len(Experiments()) != 20 {
		t.Fatalf("experiments = %d, want 20 (every paper artifact + ablation + trace + faults + fastpath + transport + explore + soak + scale + readpath)", len(Experiments()))
	}
	if _, err := Run([]string{"nope"}, quickOpts); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, ok := Find("fig4a"); !ok {
		t.Fatal("fig4a missing")
	}
	if _, ok := Find("trace"); !ok {
		t.Fatal("trace missing")
	}
	if _, ok := Find("soak"); !ok {
		t.Fatal("soak missing")
	}
}

// TestTraceShape checks the rendered span tree of the trace experiment: one
// table per profile, and the IUs section must show the full causal chain —
// the lock-store enqueue LWT with its Paxos phases and cross-site RPC legs
// broken into NIC/transit components, and the quorum critical put.
func TestTraceShape(t *testing.T) {
	tables := runTrace(quickOpts)
	if len(tables) != 3 {
		t.Fatalf("tables = %d, want one per profile", len(tables))
	}
	tb := findTable(t, tables, "trace-IUs")
	var tree strings.Builder
	for _, row := range tb.Rows {
		tree.WriteString(row[0] + "\n")
	}
	s := tree.String()
	for _, want := range []string{
		"criticalSection",
		"music.createLockRef",
		"lockstore.enqueue",
		"store.cas",
		"paxos.prepare",
		"paxos.read",
		"paxos.propose",
		"paxos.commit",
		"music.acquireLock.peek",
		"music.acquireLock.grant",
		"music.criticalPut",
		"rpc:store.apply",
		"music.releaseLock",
		"net.nic",
		"net.transit",
		"serve:store.prepare",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("trace tree missing %q", want)
		}
	}
	// The quorum critical put must reach at least two distinct sites.
	if !(strings.Contains(s, "ohio") && (strings.Contains(s, "ncalifornia") || strings.Contains(s, "oregon"))) {
		t.Errorf("trace tree missing cross-site routes:\n%s", s)
	}
	if strings.Contains(s, "FAILED") {
		t.Errorf("healthy critical section has failed spans:\n%s", s)
	}
}

func TestTable2Shape(t *testing.T) {
	tables := runTable2(quickOpts)
	tb := findTable(t, tables, "table2")
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 profiles", len(tb.Rows))
	}
	if tb.Rows[1][0] != "IUs" {
		t.Fatalf("row order: %v", tb.Rows)
	}
	if s := tb.String(); !strings.Contains(s, "IUsEu") {
		t.Fatalf("render missing profile:\n%s", s)
	}
	if md := tb.Markdown(); !strings.Contains(md, "| Profile |") {
		t.Fatalf("markdown malformed:\n%s", md)
	}
}

func TestFig4aShape(t *testing.T) {
	tb := findTable(t, runFig4a(quickOpts), "fig4a")
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		ev := parseTP(t, row[1])
		music := parseTP(t, row[2])
		mscp := parseTP(t, row[3])
		// The paper's ordering: CassaEV ≫ MUSIC > MSCP.
		if !(ev > music && music > mscp) {
			t.Errorf("%s: ordering violated: ev=%v music=%v mscp=%v", row[0], ev, music, mscp)
		}
		// MUSIC ≈ 1.2-1.5x MSCP.
		if r := music / mscp; r < 1.1 || r > 1.9 {
			t.Errorf("%s: MUSIC/MSCP = %.2f, want ~1.3", row[0], r)
		}
	}
}

func TestFig5aShape(t *testing.T) {
	tb := findTable(t, runFig5a(quickOpts), "fig5a")
	for _, row := range tb.Rows {
		ev := parseLat(t, row[1])
		music := parseLat(t, row[2])
		mscp := parseLat(t, row[3])
		if !(ev < music && music < mscp) {
			t.Errorf("%s: latency ordering violated: ev=%v music=%v mscp=%v", row[0], ev, music, mscp)
		}
	}
}

func TestFig5bShape(t *testing.T) {
	tb := findTable(t, runFig5b(quickOpts), "fig5b")
	lat := make(map[string]float64)
	for _, row := range tb.Rows {
		lat[row[0]] = parseLat(t, row[2])
	}
	if lat["acquireLock peek"] > 2 {
		t.Errorf("peek = %.2fms, want local sub-ms", lat["acquireLock peek"])
	}
	if !(lat["createLockRef"] > 3*lat["criticalPut (MUSIC)"]) {
		t.Errorf("createLockRef %.0fms not ≈4x quorum put %.0fms", lat["createLockRef"], lat["criticalPut (MUSIC)"])
	}
	if !(lat["criticalPut (MSCP)"] > 2.5*lat["criticalPut (MUSIC)"]) {
		t.Errorf("LWT put %.0fms not ≫ quorum put %.0fms", lat["criticalPut (MSCP)"], lat["criticalPut (MUSIC)"])
	}
}

func TestFig6aShape(t *testing.T) {
	tb := findTable(t, runFig6a(quickOpts), "fig6a")
	if len(tb.Rows) < 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	first, last := tb.Rows[0], tb.Rows[len(tb.Rows)-1]
	musicFirst, zk := parseTP(t, first[1]), parseTP(t, first[3])
	musicLast, zkLast := parseTP(t, last[1]), parseTP(t, last[3])
	// Batch 1: ZooKeeper ahead of MUSIC; large batches: MUSIC ahead.
	if musicFirst >= zk {
		t.Errorf("batch 1: MUSIC %v not below ZK %v", musicFirst, zk)
	}
	if musicLast <= zkLast {
		t.Errorf("batch %s: MUSIC %v not above ZK %v", last[0], musicLast, zkLast)
	}
	// Amortization: MUSIC throughput grows with batch size.
	if musicLast < 2*musicFirst {
		t.Errorf("MUSIC did not amortize: %v -> %v", musicFirst, musicLast)
	}
}

func TestFig8Shape(t *testing.T) {
	tb := findTable(t, runFig8(quickOpts), "fig8")
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (2 systems × 2 profiles)", len(tb.Rows))
	}
	// On IUs the MUSIC median sits left of MSCP's.
	var musicP50, mscpP50 float64
	for _, row := range tb.Rows {
		if row[1] != "IUs" {
			continue
		}
		if row[0] == "MUSIC" {
			musicP50 = parseLat(t, row[4])
		} else {
			mscpP50 = parseLat(t, row[4])
		}
	}
	if !(musicP50 < mscpP50) {
		t.Errorf("IUs p50: MUSIC %v not below MSCP %v", musicP50, mscpP50)
	}
}

func TestFaultsShape(t *testing.T) {
	tables := runFaults(quickOpts)
	if len(tables) != 2 {
		t.Fatalf("tables = %d, want campaign + overhead", len(tables))
	}
	campaign, overhead := tables[0], tables[1]
	for _, row := range campaign.Rows {
		if row[2] != row[1] {
			t.Errorf("seed %s: completed %s of %s sections despite failover", row[0], row[2], row[1])
		}
		if row[4] == "0" {
			t.Errorf("seed %s: partition produced no failover", row[0])
		}
		if row[5] != "ncalifornia" {
			t.Errorf("seed %s: client ended on %q, want ncalifornia", row[0], row[5])
		}
	}
	// The retry layer must be free on the healthy path: every variant
	// within 1% of the NoRetry baseline.
	base := parseLat(t, overhead.Rows[0][1])
	for _, row := range overhead.Rows[1:] {
		got := parseLat(t, row[1])
		if diff := got - base; diff > base/100 || diff < -base/100 {
			t.Errorf("%s CS latency %.1fms, want within 1%% of NoRetry %.1fms", row[0], got, base)
		}
	}
}

// TestReadpathShape checks the adaptive-consistency acceptance criteria on
// the quick sweep: holder leases must serve gets at least 3x below the
// quorum plane's median, and under injected staleness the monitor must trip
// (violations seen), flip the sites to QUORUM, and see nothing after the
// flip.
func TestReadpathShape(t *testing.T) {
	tb := findTable(t, runReadpath(quickOpts), "readpath")
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 configs", len(tb.Rows))
	}
	rows := make(map[string][]string)
	for _, row := range tb.Rows {
		rows[row[0]] = row
	}
	quorumP50 := parseLat(t, rows["quorum"][1])
	leaseP50 := parseLat(t, rows["lease"][1])
	adaptiveP50 := parseLat(t, rows["adaptive"][1])
	if quorumP50 < 3*leaseP50 {
		t.Errorf("lease p50 %.2fms not ≥3x below quorum p50 %.2fms", leaseP50, quorumP50)
	}
	if adaptiveP50 >= quorumP50 {
		t.Errorf("adaptive ONE p50 %.2fms not below quorum p50 %.2fms", adaptiveP50, quorumP50)
	}
	for _, cfg := range []string{"quorum", "lease", "adaptive"} {
		if rows[cfg][4] != "0" || rows[cfg][6] != "false" {
			t.Errorf("%s: clean run saw violations=%s flipped=%s", cfg, rows[cfg][4], rows[cfg][6])
		}
	}
	stale := rows["adaptive_stale"]
	if stale[4] == "0" {
		t.Errorf("adaptive_stale: injected staleness produced no monitor violations")
	}
	if stale[5] != "0" {
		t.Errorf("adaptive_stale: %s violations after the flip, want 0", stale[5])
	}
	if stale[6] != "true" {
		t.Errorf("adaptive_stale: monitor never flipped the site to QUORUM")
	}
}

func TestAblationShape(t *testing.T) {
	tb := findTable(t, runAblation(quickOpts), "ablation")
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 variants", len(tb.Rows))
	}
	base := parseLat(t, tb.Rows[0][1])
	noSynchFlag := parseLat(t, tb.Rows[1][1])
	noLocalPeek := parseLat(t, tb.Rows[2][1])
	// Both ablations must cost extra quorum round trips per section.
	if noSynchFlag < base+80 {
		t.Errorf("always-synchronize CS %.0fms not ≫ baseline %.0fms", noSynchFlag, base)
	}
	if noLocalPeek < base+80 {
		t.Errorf("quorum-peek CS %.0fms not ≫ baseline %.0fms", noLocalPeek, base)
	}
}
