package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/ycsb"
	"repro/music"
)

// readpathFabric is the experiment's latency profile: three sites spread
// across a metro area (~1.2ms inter-site RTT). Wider than the scale
// campaign's 500µs fabric on purpose — at 500µs the modeled per-read CPU
// costs rival the network round, and the quorum-vs-local contrast under
// test would be dominated by a constant both planes pay (the local lock-row
// peek every critical get runs).
func readpathFabric() *simnet.Profile {
	sites := []string{"metro-a", "metro-b", "metro-c"}
	p := simnet.NewProfile("metro", sites...)
	for i, a := range sites {
		for _, b := range sites[i+1:] {
			p.SetRTT(a, b, 1200*time.Microsecond)
		}
	}
	return p
}

// readpathConfigs are the four read planes under comparison, over the same
// metro fabric and workload. The string name is the row identity benchgate
// keys on.
var readpathConfigs = []struct {
	name string
	opts []music.Option
}{
	// Baseline: every critical get is a quorum read (one inter-site RTT).
	{"quorum", nil},
	// Holder leases: the granting site serves the section's gets locally
	// for the lease window, under the full critical-check guard.
	{"lease", []music.Option{music.WithHolderLeases()}},
	// Adaptive reads on a clean history: the monitor never sees a
	// violation, so every get stays at ONE (the local replica).
	{"adaptive", []music.Option{music.WithAdaptiveReads()}},
	// Adaptive reads against deterministic injected staleness: the monitor
	// must trip and flip the sites back to QUORUM, after which no further
	// violation may appear.
	{"adaptive_stale", []music.Option{
		music.WithAdaptiveReads(),
		music.WithProtocolMutation(music.MutationStaleReads),
	}},
}

// readpathResult is one row of the BENCH_readpath.json artifact. The *_us
// and *_per_sec fields are the benchgate-gated metrics; the monitor columns
// are informational (and asserted by the package test, not the gate).
type readpathResult struct {
	Config        string  `json:"config"`
	P50GetMicros  int64   `json:"p50_get_us"`
	MeanGetMicros int64   `json:"mean_get_us"`
	ReadsPerSec   float64 `json:"reads_per_sec"`
	Violations    int     `json:"violations"`
	PostFlip      int     `json:"post_flip_violations"`
	Flipped       bool    `json:"flipped"`
}

// measureReadpath drives one config: a closed loop of workers per site, each
// section locking a Zipfian-drawn key and issuing a 95/5 get/put mix inside
// it. Only the critical gets are timed — the lock plane is identical across
// configs, and the experiment is about what a get costs once the section
// holds the key.
func measureReadpath(cfgName string, clusterOpts []music.Option, opts Options) readpathResult {
	c, err := music.New(append([]music.Option{
		music.WithSimnetProfile(readpathFabric()),
		music.WithSeed(11),
	}, clusterOpts...)...)
	if err != nil {
		panic(fmt.Sprintf("bench: readpath %s: %v", cfgName, err))
	}
	sites := c.Sites()
	workersPerSite, totalSections := 4, 1800
	if opts.Quick {
		workersPerSite, totalSections = 2, 300
	}
	workers := workersPerSite * len(sites)
	const opsPerSection = 8 // 8 ops/section; every 20th op overall is a put

	gens := make([]*ycsb.Generator, workers)
	for i := range gens {
		g, err := ycsb.NewGenerator(ycsb.Config{
			Workload: ycsb.WorkloadR,
			Records:  400,
		}, int64(7000+i))
		if err != nil {
			panic(fmt.Sprintf("bench: readpath ycsb: %v", err))
		}
		gens[i] = g
	}

	var out readpathResult
	if err := c.Run(func() {
		lat := stats.NewHistogram()
		issued, reads := 0, 0
		done := sim.NewMailbox[struct{}](c.Virtual())
		start := c.Now()
		for wi := 0; wi < workers; wi++ {
			wi := wi
			cl := c.Client(sites[wi%len(sites)])
			c.Go(func() {
				defer done.Send(struct{}{})
				opCtr := wi // offset so the 5% puts spread across workers
				for {
					if issued >= totalSections {
						return
					}
					issued++
					key := gens[wi].Next().Key
					ref, err := cl.CreateLockRef(key)
					if err != nil {
						c.Sleep(time.Duration(5+c.Virtual().Rand().Intn(20)) * time.Millisecond)
						continue
					}
					if err := cl.AwaitLock(key, ref, 30*time.Second); err != nil {
						_ = cl.RemoveLockRef(key, ref)
						continue
					}
					for j := 0; j < opsPerSection; j++ {
						opCtr++
						if opCtr%20 == 0 {
							_ = cl.CriticalPut(key, ref, []byte(fmt.Sprintf("w%d-%d", wi, opCtr)))
							continue
						}
						gStart := c.Now()
						if _, err := cl.CriticalGet(key, ref); err == nil {
							lat.Observe(c.Now() - gStart)
							reads++
						}
					}
					_ = cl.ReleaseLock(key, ref)
				}
			})
		}
		for wi := 0; wi < workers; wi++ {
			if _, err := done.RecvTimeout(time.Hour); err != nil {
				panic("bench: readpath workers stuck")
			}
		}
		makespan := c.Now() - start
		out = readpathResult{
			Config:        cfgName,
			P50GetMicros:  lat.Quantile(0.5).Microseconds(),
			MeanGetMicros: lat.Mean().Microseconds(),
			ReadsPerSec:   float64(reads) / makespan.Seconds(),
		}
	}); err != nil {
		panic(fmt.Sprintf("bench: readpath %s: %v", cfgName, err))
	}
	if mon := c.Monitor(); mon != nil {
		for _, site := range sites {
			out.Violations += mon.Violations(site)
			out.PostFlip += mon.PostFlipViolations(site)
			if mon.Flipped(site) {
				out.Flipped = true
			}
		}
	}
	return out
}

// runReadpath reproduces the adaptive-consistency read-path comparison:
// the same Zipfian 95/5 workload over the metro fabric under each read
// plane, reporting per-get latency, read throughput, and what the live
// consistency monitor saw.
func runReadpath(opts Options) []Table {
	t := Table{
		ID:      "readpath",
		Title:   "Read path: quorum vs holder leases vs adaptive ONE reads (metro fabric, Zipfian 95/5)",
		Columns: []string{"Config", "p50 get", "mean get", "reads/s", "violations", "post-flip", "flipped"},
		Notes: []string{
			"gets timed inside held sections only; the lock plane is identical across configs",
			"acceptance: lease p50 ≥3x below quorum p50; adaptive_stale must flip with post-flip violations = 0",
		},
	}
	var results []readpathResult
	for _, cfg := range readpathConfigs {
		opts.logf("  readpath: %s", cfg.name)
		r := measureReadpath(cfg.name, cfg.opts, opts)
		results = append(results, r)
		t.Rows = append(t.Rows, []string{
			r.Config,
			stats.FormatDuration(time.Duration(r.P50GetMicros) * time.Microsecond),
			stats.FormatDuration(time.Duration(r.MeanGetMicros) * time.Microsecond),
			fmtTP(r.ReadsPerSec),
			fmt.Sprintf("%d", r.Violations),
			fmt.Sprintf("%d", r.PostFlip),
			fmt.Sprintf("%v", r.Flipped),
		})
	}
	if opts.ReadpathJSON != "" {
		writeReadpathJSON(opts, results)
	}
	return []Table{t}
}

func writeReadpathJSON(opts Options, results []readpathResult) {
	doc := struct {
		Experiment string           `json:"experiment"`
		Quick      bool             `json:"quick"`
		Results    []readpathResult `json:"results"`
	}{Experiment: "readpath", Quick: opts.Quick, Results: results}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("bench: readpath json: %v", err))
	}
	data = append(data, '\n')
	if err := os.WriteFile(opts.ReadpathJSON, data, 0o644); err != nil {
		panic(fmt.Sprintf("bench: readpath json: %v", err))
	}
	opts.logf("  readpath: wrote %s", opts.ReadpathJSON)
}
