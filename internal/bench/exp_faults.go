package bench

import (
	"fmt"
	"time"

	"repro/internal/stats"
	"repro/music"
)

// runFaults measures the client-layer failure semantics (§III-A: "the
// client should retry, possibly at another MUSIC replica") under seeded
// fault injection, and the healthy-path cost of carrying that machinery.
//
// Campaign: a failover client at ohio drives back-to-back critical
// sections while the schedule partitions ohio away from the majority
// mid-campaign and heals it a fixed window later. Every section must
// complete — the mid-partition ones by retrying and failing over to
// ncalifornia — and the client's recovery latency (wall time the first
// partition-straddling section lost to retries plus re-acquisition at the
// failover site) is reported per seed, alongside the music_retry_total /
// music_failover_total counters the run produced.
//
// Overhead: the same sequential section loop on a healthy cluster, run
// with retries+failover enabled vs. NoRetry. The retry layer sits on the
// hot path of every operation, so the two must agree to within noise —
// this is the number EXPERIMENTS.md cites for "failure handling is free
// until a failure happens".
func runFaults(opts Options) []Table {
	seeds := []int64{1, 2, 3, 4, 5}
	sections := 12
	if opts.Quick {
		seeds = seeds[:2]
		sections = 6
	}

	campaign := Table{
		ID:      "faults",
		Title:   "Fault campaign: sections across a mid-campaign site partition (IUs, ohio cut off 15s)",
		Columns: []string{"Seed", "Sections", "Completed", "Retries", "Failovers", "Final site", "Recovery latency"},
		Notes: []string{
			"recovery latency = duration of the section that straddles the partition, dominated by the per-site attempt budget waiting out store timeouts at the cut-off site before the failover fires",
			"counters are the run's music_retry_total / music_failover_total sums across ops and sites",
		},
	}

	for _, seed := range seeds {
		opts.logf("  faults: campaign seed %d", seed)
		c, err := music.New(music.WithSeed(seed), music.WithObservability())
		if err != nil {
			panic(fmt.Sprintf("bench: faults: %v", err))
		}
		completed := 0
		var recovery time.Duration
		finalSite := ""
		partitionAt := sections / 3
		if err := c.Run(func() {
			cl := c.FailoverClient("ohio")
			defer func() { finalSite = cl.Site() }()
			for i := 0; i < sections; i++ {
				if i == partitionAt {
					c.PartitionSites([]string{"ohio"}, []string{"ncalifornia", "oregon"})
					c.Go(func() {
						c.Sleep(15 * time.Second)
						c.Heal()
					})
				}
				start := c.Now()
				err := cl.RunCritical("campaign", func(cs *music.CriticalSection) error {
					return cs.Put([]byte(fmt.Sprintf("s%d", i)))
				})
				if err == nil {
					completed++
				}
				if i == partitionAt {
					recovery = c.Now() - start
				}
			}
		}); err != nil {
			panic(fmt.Sprintf("bench: faults seed %d: %v", seed, err))
		}

		retries, failovers := int64(0), int64(0)
		for _, p := range c.Obs().Metrics().Snapshot() {
			switch p.Name {
			case "music_retry_total":
				retries += int64(p.Value)
			case "music_failover_total":
				failovers += int64(p.Value)
			}
		}
		campaign.Rows = append(campaign.Rows, []string{
			fmt.Sprintf("%d", seed),
			fmt.Sprintf("%d", sections),
			fmt.Sprintf("%d", completed),
			fmt.Sprintf("%d", retries),
			fmt.Sprintf("%d", failovers),
			finalSite,
			stats.FormatDuration(recovery),
		})
	}

	overhead := Table{
		ID:      "faults",
		Title:   "Healthy-path overhead of the retry/failover layer (IUs, sequential sections)",
		Columns: []string{"Client", "Mean CS latency", "vs NoRetry"},
		Notes: []string{
			"same seed and schedule; the retry layer adds no quorum round trips when operations succeed",
		},
	}
	iters, discard := latencyIters(opts)
	var base time.Duration
	for _, v := range []struct {
		name  string
		build func(c *music.Cluster) *music.Client
	}{
		{"NoRetry (pre-fix behavior)", func(c *music.Cluster) *music.Client {
			return c.Client("ohio", music.WithRetry(music.NoRetry))
		}},
		{"DefaultRetryPolicy", func(c *music.Cluster) *music.Client {
			return c.Client("ohio")
		}},
		{"FailoverClient", func(c *music.Cluster) *music.Client {
			return c.FailoverClient("ohio")
		}},
	} {
		opts.logf("  faults: overhead %s", v.name)
		c, err := music.New(music.WithSeed(31))
		if err != nil {
			panic(fmt.Sprintf("bench: faults overhead: %v", err))
		}
		var mean time.Duration
		if err := c.Run(func() {
			cl := v.build(c)
			var hist = stats.NewHistogram()
			for i := 0; i < iters+discard; i++ {
				start := c.Now()
				err := cl.RunCritical(fmt.Sprintf("oh-%d", i), func(cs *music.CriticalSection) error {
					return cs.Put(value(10))
				})
				if err != nil {
					panic(fmt.Sprintf("bench: faults overhead %s: %v", v.name, err))
				}
				if i >= discard {
					hist.Observe(c.Now() - start)
				}
			}
			mean = hist.Mean()
		}); err != nil {
			panic(fmt.Sprintf("bench: faults overhead %s: %v", v.name, err))
		}
		rel := "1.00x"
		if base == 0 {
			base = mean
		} else if base > 0 {
			rel = fmt.Sprintf("%.2fx", float64(mean)/float64(base))
		}
		overhead.Rows = append(overhead.Rows, []string{v.name, stats.FormatDuration(mean), rel})
	}

	return []Table{campaign, overhead}
}
