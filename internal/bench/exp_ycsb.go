package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/ycsb"
)

// ycsbResult is one (system, workload) measurement.
type ycsbResult struct {
	tp         float64
	meanLat    time.Duration
	collisions float64 // fraction of ops that contended for a lock
}

// measureYCSB drives the Fig 9 setup, matching the paper's methodology: a
// fixed operation count (YCSB's operationcount) is drained by threads
// across all sites, each op converted into a MUSIC critical section over a
// Zipfian-chosen key, so threads genuinely collide on hot locks (the paper
// measured ~5.5% collisions). Throughput is ops/makespan; latency includes
// lock-queue waits.
func measureYCSB(mode core.Mode, workload string, opts Options) ycsbResult {
	w := buildMUSIC(simnet.ProfileIUs, 1, mode, 99, nil)
	// Concurrency is sized for the paper's contention regime (~5.5% lock
	// collisions over the Zipfian-hot keyspace); more threads would convoy
	// on the hottest locks and measure queueing instead of the store.
	workersPerSite, records, totalCount := 1, 1000, 2000
	if opts.Quick {
		totalCount = 300
	}
	workers := workersPerSite * len(w.reps)

	gens := make([]*ycsb.Generator, workers)
	for i := range gens {
		g, err := ycsb.NewGenerator(ycsb.Config{Workload: workload, Records: records}, int64(1000+i))
		if err != nil {
			panic(fmt.Sprintf("bench: ycsb: %v", err))
		}
		gens[i] = g
	}

	var (
		out        ycsbResult
		collisions int64
		completed  int64
	)
	mustRun(w, func() {
		lat := stats.NewHistogram()
		issued := 0
		done := sim.NewMailbox[struct{}](w.rt)
		start := w.rt.Now()
		for wi := 0; wi < workers; wi++ {
			wi := wi
			rep := w.replicaFor(wi)
			w.rt.Go(func() {
				defer done.Send(struct{}{})
				for {
					if issued >= totalCount {
						return
					}
					issued++
					op := gens[wi].Next()
					opStart := w.rt.Now()
					collided, err := runYCSBOp(w, rep, op)
					if err != nil {
						// Hot-lock contention: back off before the next op,
						// as the paper's clients do (§III-A).
						w.rt.Sleep(time.Duration(100+w.rt.Rand().Intn(400)) * time.Millisecond)
						continue
					}
					completed++
					if collided {
						collisions++
					}
					lat.Observe(w.rt.Now() - opStart)
				}
			})
		}
		for wi := 0; wi < workers; wi++ {
			if _, err := done.RecvTimeout(time.Hour); err != nil {
				panic("bench: ycsb workers stuck")
			}
		}
		makespan := w.rt.Now() - start
		out.tp = float64(completed) / makespan.Seconds()
		out.meanLat = lat.Mean()
	})
	if completed > 0 {
		out.collisions = float64(collisions) / float64(completed)
	}
	return out
}

// runYCSBOp executes one YCSB op as a MUSIC critical section and reports
// whether it contended for the lock.
func runYCSBOp(w *musicWorld, rep *core.Replica, op ycsb.Op) (bool, error) {
	ref, err := rep.CreateLockRef(op.Key)
	if err != nil {
		return false, err
	}
	collided := false
	for {
		ok, acqErr := rep.AcquireLock(op.Key, ref)
		if acqErr != nil {
			return collided, acqErr
		}
		if ok {
			break
		}
		collided = true
		w.rt.Sleep(5 * time.Millisecond)
	}
	if op.Kind == ycsb.Update {
		if err := rep.CriticalPut(op.Key, ref, op.Value); err != nil {
			return collided, err
		}
	} else {
		if _, err := rep.CriticalGet(op.Key, ref); err != nil {
			return collided, err
		}
	}
	return collided, rep.ReleaseLock(op.Key, ref)
}

// runFig9 reproduces Fig 9 (appendix §X-B2): YCSB R / UR / U workloads,
// MUSIC vs MSCP, throughput and latency, with lock collisions allowed.
func runFig9(opts Options) []Table {
	t := Table{
		ID:      "fig9",
		Title:   "YCSB workloads on IUs (Zipfian keys, collisions allowed)",
		Columns: []string{"Workload", "MUSIC op/s", "MSCP op/s", "MUSIC lat", "MSCP lat", "Collisions", "MUSIC/MSCP"},
		Notes: []string{
			"paper: MUSIC ahead of MSCP by ~6-20% throughput and 0-20% latency; ~5.5% lock collisions",
		},
	}
	for _, wl := range []string{ycsb.WorkloadR, ycsb.WorkloadUR, ycsb.WorkloadU} {
		opts.logf("  fig9: workload %s", wl)
		music := measureYCSB(core.ModeQuorum, wl, opts)
		mscp := measureYCSB(core.ModeLWT, wl, opts)
		t.Rows = append(t.Rows, []string{
			wl,
			fmtTP(music.tp), fmtTP(mscp.tp),
			stats.FormatDuration(music.meanLat), stats.FormatDuration(mscp.meanLat),
			fmt.Sprintf("%.1f%%", music.collisions*100),
			fmtRatio(music.tp, mscp.tp),
		})
	}
	return []Table{t}
}
