package bench

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

// tpResult is one throughput measurement.
type tpResult struct {
	Ops    int64
	PerSec float64
	Lat    *stats.Histogram
	Errors int64
}

// measureThroughput drives `workers` closed-loop generators against work
// for warmup+window of virtual time and counts operations completing inside
// the window. It must be called from inside the simulation.
func measureThroughput(rt *sim.Virtual, workers int, warmup, window time.Duration, work func(worker, iter int) error) tpResult {
	res := tpResult{Lat: stats.NewHistogram()}
	warmEnd := rt.Now() + warmup
	measureEnd := warmEnd + window
	stopped := false

	for w := 0; w < workers; w++ {
		w := w
		rt.Go(func() {
			for i := 0; !stopped; i++ {
				start := rt.Now()
				err := work(w, i)
				end := rt.Now()
				if end > measureEnd {
					return
				}
				if end <= warmEnd {
					continue
				}
				if err != nil {
					res.Errors++
					continue
				}
				res.Ops++
				res.Lat.Observe(end - start)
			}
		})
	}
	rt.Sleep(warmup + window)
	stopped = true
	res.PerSec = float64(res.Ops) / window.Seconds()
	return res
}

// latResult is one latency measurement.
type latResult struct {
	Hist   *stats.Histogram
	Errors int
}

// measureLatency runs `iters` sequential operations on a single worker
// (the paper's single-thread latency methodology), discarding `discard`
// warmup iterations.
func measureLatency(rt *sim.Virtual, iters, discard int, work func(iter int) error) latResult {
	res := latResult{Hist: stats.NewHistogram()}
	for i := 0; i < iters+discard; i++ {
		start := rt.Now()
		err := work(i)
		if err != nil {
			res.Errors++
			continue
		}
		if i >= discard {
			res.Hist.Observe(rt.Now() - start)
		}
	}
	return res
}

// fmtTP renders an ops/sec figure.
func fmtTP(v float64) string {
	switch {
	case v >= 10000:
		return fmt.Sprintf("%.1fK", v/1000)
	case v >= 1000:
		return fmt.Sprintf("%.2fK", v/1000)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

// fmtRatio renders a speedup ratio.
func fmtRatio(a, b float64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", a/b)
}
