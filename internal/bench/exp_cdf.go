package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// runFig8 reproduces Fig 8 (appendix §X-B1): the latency CDFs of MUSIC and
// MSCP critical sections on the 11 and IUs profiles, reported as quantiles.
func runFig8(opts Options) []Table {
	t := Table{
		ID:      "fig8",
		Title:   "Critical-section latency CDF quantiles (single thread)",
		Columns: []string{"System", "Profile", "p10", "p25", "p50", "p75", "p90", "p99"},
		Notes: []string{
			"paper: similar CDFs on 11; MUSIC ≈30% left of MSCP on IUs",
		},
	}
	iters := 150
	if opts.Quick {
		iters = 30
	}
	for _, mode := range []core.Mode{core.ModeQuorum, core.ModeLWT} {
		name := "MUSIC"
		if mode == core.ModeLWT {
			name = "MSCP"
		}
		for _, p := range []*simnet.Profile{simnet.Profile11, simnet.ProfileIUs} {
			opts.logf("  fig8: %s on %s", name, p.Name())
			w := buildMUSIC(p, 1, mode, 21, nil)
			val := value(10)
			var row []string
			mustRun(w, func() {
				res := measureLatency(w.rt, iters, 3, func(i int) error {
					return runCS(w.rt, w.reps[0], fmt.Sprintf("k-%d", i), 1, val)
				})
				row = []string{name, p.Name()}
				for _, q := range []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.99} {
					row = append(row, stats.FormatDuration(res.Hist.Quantile(q)))
				}
			})
			t.Rows = append(t.Rows, row)
		}
	}
	return []Table{t}
}
