package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/store"
)

// runAblation quantifies the two design choices §III-A and §IV-B motivate
// (not a paper figure — DESIGN.md's ablation index):
//
//   - the synchFlag "dirty bit": without it, every grant pays the full
//     synchronization (a value quorum read plus two quorum writes);
//   - the local lsPeek: without it, every acquire poll and critical-op
//     guard is a quorum round trip, which also multiplies back-end load
//     while clients wait for contended locks.
func runAblation(opts Options) []Table {
	iters, discard := latencyIters(opts)

	variant := func(name string, cfg core.Config) []string {
		rt := sim.New(31)
		net := simnet.New(rt, simnet.Config{Profile: simnet.ProfileIUs})
		st := store.New(net, store.Config{})
		cfg.T = 10 * time.Minute
		rep0 := core.NewReplica(st.Client(0), cfg)
		rep1 := core.NewReplica(st.Client(1), cfg)

		var csMean, contendedMean time.Duration
		if err := rt.Run(func() {
			// Uncontended critical-section latency.
			res := measureLatency(rt, iters, discard, func(i int) error {
				return runCS(rt, rep0, fmt.Sprintf("u-%d", i), 1, value(10))
			})
			if res.Errors > 0 {
				panic(fmt.Sprintf("bench: ablation %s: %d errors", name, res.Errors))
			}
			csMean = res.Hist.Mean()

			// Contended acquisition: a waiter polls while a holder occupies
			// the lock for 300ms, so peek costs accrue per poll.
			res = measureLatency(rt, iters, discard, func(i int) error {
				key := fmt.Sprintf("c-%d", i)
				ref0, err := rep0.CreateLockRef(key)
				if err != nil {
					return err
				}
				for {
					ok, err := rep0.AcquireLock(key, ref0)
					if err != nil {
						return err
					}
					if ok {
						break
					}
					rt.Sleep(time.Millisecond)
				}
				rt.Go(func() {
					rt.Sleep(300 * time.Millisecond)
					_ = rep0.ReleaseLock(key, ref0)
				})
				// The measured client waits behind the holder.
				ref1, err := rep1.CreateLockRef(key)
				if err != nil {
					return err
				}
				for {
					ok, err := rep1.AcquireLock(key, ref1)
					if err != nil {
						return err
					}
					if ok {
						break
					}
					rt.Sleep(5 * time.Millisecond)
				}
				if err := rep1.CriticalPut(key, ref1, value(10)); err != nil {
					return err
				}
				return rep1.ReleaseLock(key, ref1)
			})
			if res.Errors > 0 {
				panic(fmt.Sprintf("bench: ablation %s contended: %d errors", name, res.Errors))
			}
			contendedMean = res.Hist.Mean()
		}); err != nil {
			panic(fmt.Sprintf("bench: ablation %s: %v", name, err))
		}
		return []string{name, stats.FormatDuration(csMean), stats.FormatDuration(contendedMean)}
	}

	t := Table{
		ID:      "ablation",
		Title:   "Design-choice ablations, IUs (critical-section latency)",
		Columns: []string{"Variant", "Uncontended CS", "Contended CS (300ms holder)"},
		Notes: []string{
			"synchFlag off = full synchronization on every grant (§IV-B); local peek off = quorum reads for every poll (§III-A)",
		},
	}
	t.Rows = append(t.Rows, variant("MUSIC (baseline)", core.Config{}))
	t.Rows = append(t.Rows, variant("no synchFlag (always synchronize)", core.Config{AlwaysSynchronize: true}))
	t.Rows = append(t.Rows, variant("no local peek (quorum peeks)", core.Config{QuorumPeek: true}))
	return []Table{t}
}
