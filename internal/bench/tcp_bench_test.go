package bench

import (
	"fmt"
	"testing"
)

// BenchmarkTCPLockSection drives the full Table I critical section —
// createLockRef, acquireLock, criticalPut, criticalGet, releaseLock — over
// the real TCP loopback deployment, a fresh key per iteration. This is the
// profiling entry point for the message-plane hot path:
//
//	go test ./internal/bench -bench TCPLockSection -cpuprofile cpu.prof
func BenchmarkTCPLockSection(b *testing.B) {
	back := newTCPLoopback()
	defer back.close()
	value := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("bench-%d", i)
		ref, err := back.cl.CreateLockRef(key)
		if err != nil {
			b.Fatalf("createLockRef: %v", err)
		}
		holder, err := back.cl.AcquireLock(key, ref)
		if err != nil || !holder {
			b.Fatalf("acquireLock: %v holder=%t", err, holder)
		}
		if err := back.cl.CriticalPut(key, ref, value); err != nil {
			b.Fatalf("criticalPut: %v", err)
		}
		if _, err := back.cl.CriticalGet(key, ref); err != nil {
			b.Fatalf("criticalGet: %v", err)
		}
		if err := back.cl.ReleaseLock(key, ref); err != nil {
			b.Fatalf("releaseLock: %v", err)
		}
	}
}
