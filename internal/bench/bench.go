// Package bench regenerates every table and figure of the paper's
// evaluation (§VIII and appendix §X-B) against the simulated substrates:
// one experiment per artifact, each building fresh deterministic clusters,
// driving closed-loop load generators in virtual time, and emitting the
// same rows/series the paper reports. cmd/musicbench is the CLI front end;
// bench_test.go exposes each experiment as a testing.B benchmark.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is one rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as a GitHub table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteString("\n")
	return b.String()
}

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks measurement windows and sweep points so the whole
	// suite runs in seconds (used by tests and -quick).
	Quick bool
	// Workers is the closed-loop generator population per site for
	// throughput experiments. Defaults to 160 (60 in Quick mode).
	Workers int
	// Log receives progress lines (nil discards them).
	Log io.Writer
	// FastpathJSON, when non-empty, makes the fastpath experiment also
	// write its per-config results to this path as JSON (the
	// BENCH_fastpath.json perf-trajectory artifact).
	FastpathJSON string
	// TransportJSON, when non-empty, makes the transport experiment also
	// write its per-op results to this path as JSON (the
	// BENCH_transport.json artifact).
	TransportJSON string
	// SoakJSON, when non-empty, makes the soak experiment also write its
	// per-scenario SLO reports to this path as JSON (the BENCH_soak.json
	// artifact).
	SoakJSON string
	// ScaleJSON, when non-empty, makes the scale experiment also write its
	// per-shard-count results to this path as JSON (the BENCH_scale.json
	// artifact).
	ScaleJSON string
	// ReadpathJSON, when non-empty, makes the readpath experiment also write
	// its per-config results to this path as JSON (the BENCH_readpath.json
	// artifact).
	ReadpathJSON string
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	if o.Quick {
		return 60
	}
	return 160
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// Experiment is one runnable artifact reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) []Table
}

// Experiments returns the registry in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table2", "Latency profiles used for 3-site deployments (Table II)", runTable2},
		{"fig4a", "Peak throughput of CassaEV / MUSIC / MSCP across latency profiles (Fig 4a)", runFig4a},
		{"fig4b", "Peak throughput vs cluster size, IUs profile, fully sharded (Fig 4b)", runFig4b},
		{"fig5a", "Mean operation latency across latency profiles (Fig 5a)", runFig5a},
		{"fig5b", "Latency breakdown of MUSIC operations, IUs profile (Fig 5b)", runFig5b},
		{"trace", "Causal span tree of one critical section per profile (internal/obs)", runTrace},
		{"fig6a", "MUSIC vs MSCP vs ZooKeeper: throughput vs critical-section batch size (Fig 6a)", runFig6a},
		{"fig6b", "MUSIC vs MSCP vs ZooKeeper: throughput vs data size, batch 100 (Fig 6b)", runFig6b},
		{"fig7a", "MUSIC vs CockroachDB critical section: latency vs batch size (Fig 7a)", runFig7a},
		{"fig7b", "MUSIC vs CockroachDB critical section: latency vs data size, batch 100 (Fig 7b)", runFig7b},
		{"fig8", "Latency CDFs for MUSIC and MSCP, profiles 11 and IUs (Fig 8)", runFig8},
		{"fig9", "YCSB workloads R / UR / U: MUSIC vs MSCP (Fig 9)", runFig9},
		{"ablation", "Design-choice ablations: synchFlag dirty bit and local peek (DESIGN.md)", runAblation},
		{"faults", "Fault-injection campaign: retries, cross-site failover, healthy-path overhead (§III-A)", runFaults},
		{"fastpath", "Critical-section fast path: grant piggyback, holder cache, write-behind, digest reads", runFastpath},
		{"transport", "Message-plane overhead: simulated network vs TCP loopback, per Table I op", runTransport},
		{"explore", "Seeded chaos explorer: randomized fault schedules checked against ECF (internal/history)", runExplore},
		{"soak", "Soak scenarios over TCP with chaosnet faults: SLO report per scenario (internal/chaosnet)", runSoak},
		{"scale", "Sharded lock/data plane scale-out: YCSB over a million-key uniform space, shards 1/2/4/8", runScale},
		{"readpath", "Adaptive read plane: quorum vs holder leases vs monitored ONE reads, metro fabric", runReadpath},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists all experiment ids.
func IDs() []string {
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the named experiments ("all" for everything) and returns
// their tables in registry order.
func Run(ids []string, opts Options) ([]Table, error) {
	want := make(map[string]bool)
	all := false
	for _, id := range ids {
		if id == "all" {
			all = true
			continue
		}
		if _, ok := Find(id); !ok {
			return nil, fmt.Errorf("bench: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
		}
		want[id] = true
	}
	var out []Table
	for _, e := range Experiments() {
		if !all && !want[e.ID] {
			continue
		}
		opts.logf("running %s: %s", e.ID, e.Title)
		out = append(out, e.Run(opts)...)
	}
	return out, nil
}
