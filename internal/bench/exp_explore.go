package bench

import (
	"fmt"
	"time"

	"repro/internal/history/explore"
)

// runExplore measures the seeded chaos explorer's throughput: generate and
// execute a batch of randomized fault schedules (internal/history/explore),
// check every history against the ECF + linearizability rules, and report
// schedules/sec in real time (the schedules themselves run in virtual
// time). Any violating seed fails the experiment loudly — the explorer's CI
// jobs depend on a clean sweep here.
func runExplore(opts Options) []Table {
	n := 500
	if opts.Quick {
		n = 50
	}
	classes := make(map[explore.FaultKind]int)
	violating := 0
	start := time.Now()
	for seed := int64(1); seed <= int64(n); seed++ {
		s := explore.Generate(seed)
		for k := range s.Classes() {
			classes[k]++
		}
		if out := explore.Run(s); out.Violating() {
			violating++
			opts.logf("  explore: seed %d VIOLATING: runErr=%v violations=%v",
				seed, out.RunErr, out.Result.Violations)
		}
	}
	elapsed := time.Since(start)
	rate := float64(n) / elapsed.Seconds()

	t := Table{
		ID:      "explore",
		Title:   "Seeded chaos explorer: schedules checked against ECF per second",
		Columns: []string{"seeds", "violating", "crash", "partition", "loss", "skew", "wall", "schedules/s"},
		Rows: [][]string{{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", violating),
			fmt.Sprintf("%d", classes[explore.FaultCrash]),
			fmt.Sprintf("%d", classes[explore.FaultPartition]),
			fmt.Sprintf("%d", classes[explore.FaultLoss]),
			fmt.Sprintf("%d", classes[explore.FaultSkew]),
			elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", rate),
		}},
		Notes: []string{
			"each schedule: 2-3 multi-site clients, 1-3 fault windows, full history check",
			"wall time is real; the schedules run in virtual time (internal/sim)",
		},
	}
	if violating > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("FAILURE: %d violating schedules — see log", violating))
	}
	return []Table{t}
}
