// Package obs is the observability subsystem: a lock-cheap metrics registry
// (counters, gauges, latency histograms with per-site/per-node labels) and a
// causal tracer whose spans follow one logical operation across tasks, RPCs
// and sites — the measurement layer behind the paper's per-operation
// breakdown (Fig 5b) and the queueing analyses of §VIII.
//
// Both halves are clocked by sim.Runtime, never time.Now(), so the same
// instrumentation yields exact virtual-time measurements under the
// simulator and wall-clock measurements in live mode.
//
// Everything is nil-safe by design: a nil *Obs, *Tracer, *Registry, *Span,
// *Counter, … turns every method into a no-op, so instrumented code paths
// carry no conditionals and — crucially — no allocations when observability
// is disabled (the default). obs_test.go proves the zero-allocation claim.
package obs

import (
	"repro/internal/sim"
)

// Options tunes an Obs instance.
type Options struct {
	// SpanRing is the capacity of the completed-span ring buffer backing
	// trace assembly (/traces, -exp trace). Defaults to 8192.
	SpanRing int
}

// Obs bundles the two halves of the subsystem. The zero value of *Obs (nil)
// is the disabled state.
type Obs struct {
	reg    *Registry
	tracer *Tracer
}

// New builds an enabled Obs over rt.
func New(rt sim.Runtime, opts Options) *Obs {
	if opts.SpanRing <= 0 {
		opts.SpanRing = 8192
	}
	return &Obs{
		reg:    newRegistry(rt),
		tracer: newTracer(rt, opts.SpanRing),
	}
}

// Metrics returns the metrics registry (nil when disabled).
func (o *Obs) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Tracer returns the causal tracer (nil when disabled).
func (o *Obs) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}
