package obs

import (
	"time"

	"repro/internal/stats"
)

// SLOReport condenses one workload's service levels out of the registry:
// the latency distribution of the operation that matters, how often it
// succeeded, and how hard the client machinery worked to keep it available
// (retries, cross-site failovers). The soak harness emits one per scenario.
type SLOReport struct {
	Scenario     string  `json:"scenario"`
	WallSeconds  float64 `json:"wall_seconds"`
	Attempts     int64   `json:"attempts"`
	Failures     int64   `json:"failures"`
	Availability float64 `json:"availability"` // successes / attempts
	Throughput   float64 `json:"throughput"`   // successes per wall second

	MeanMicros int64 `json:"mean_us"`
	P50Micros  int64 `json:"p50_us"`
	P99Micros  int64 `json:"p99_us"`
	P999Micros int64 `json:"p999_us"`
	MaxMicros  int64 `json:"max_us"`

	Retries   int64 `json:"retries"`
	Failovers int64 `json:"failovers"`
}

// SLOOptions names the series an SLO report reads.
type SLOOptions struct {
	// Scenario labels the report.
	Scenario string
	// Latency is the name of the success-latency histogram; every label
	// variant of the name is merged.
	Latency string
	// Attempts and Failures are counter names (all label variants summed).
	Attempts string
	Failures string
	// Wall is the workload's wall-clock duration.
	Wall time.Duration
}

// SumCounter sums every counter series registered under name, across all
// label sets — the "total over the whole deployment" view of per-site and
// per-op counters like music_retry_total.
func (r *Registry) SumCounter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, s := range r.series {
		if s.name == name && s.kind == "counter" {
			total += s.c.Value()
		}
	}
	return total
}

// MergedHistogram merges every histogram series registered under name,
// across all label sets, into one distribution.
func (r *Registry) MergedHistogram(name string) *stats.Histogram {
	out := stats.NewHistogram()
	if r == nil {
		return out
	}
	r.mu.Lock()
	hs := make([]*Histogram, 0, 4)
	for _, s := range r.series {
		if s.name == name && s.kind == "histogram" {
			hs = append(hs, s.h)
		}
	}
	r.mu.Unlock()
	for _, h := range hs {
		out.Merge(h.Snapshot())
	}
	return out
}

// SLO computes a service-level report from the named series. Missing series
// simply contribute zero, so a report can be taken before any traffic ran.
func (r *Registry) SLO(opts SLOOptions) SLOReport {
	h := r.MergedHistogram(opts.Latency)
	attempts := r.SumCounter(opts.Attempts)
	failures := r.SumCounter(opts.Failures)
	us := func(d time.Duration) int64 { return int64(d / time.Microsecond) }
	rep := SLOReport{
		Scenario:    opts.Scenario,
		WallSeconds: opts.Wall.Seconds(),
		Attempts:    attempts,
		Failures:    failures,
		MeanMicros:  us(h.Mean()),
		P50Micros:   us(h.Quantile(0.50)),
		P99Micros:   us(h.Quantile(0.99)),
		P999Micros:  us(h.Quantile(0.999)),
		MaxMicros:   us(h.Max()),
		Retries:     r.SumCounter("music_retry_total"),
		Failovers:   r.SumCounter("music_failover_total"),
	}
	if attempts > 0 {
		rep.Availability = float64(attempts-failures) / float64(attempts)
	}
	if s := opts.Wall.Seconds(); s > 0 {
		rep.Throughput = float64(attempts-failures) / s
	}
	return rep
}
