package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

// TraceID identifies one causal trace (one logical operation end to end).
type TraceID uint64

// SpanID identifies one span within a trace.
type SpanID uint64

// Annotation is one key/value note attached to a span.
type Annotation struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed interval of a trace. Spans form a tree via Parent.
// All methods are nil-safe: a nil *Span (the disabled path, or code running
// without an ambient span) ignores every call.
type Span struct {
	tr *Tracer

	Trace  TraceID
	ID     SpanID
	Parent SpanID // 0 for a root span
	Name   string
	Start  time.Duration // runtime time (sim.Runtime.Now), not wall clock
	Finish time.Duration
	Failed bool
	Err    string
	Notes  []Annotation

	// prev is the span that was task-current before this one was installed;
	// End restores it. Only set for installed spans.
	prev      *Span
	installed bool
	done      bool
}

// SpanContext is the portable identity of a span — what an RPC layer carries
// across a task/process boundary to parent remote work under the caller.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Context returns the span's portable identity (zero value when nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.Trace, Span: s.ID}
}

// Annotate attaches a key/value note.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.Notes = append(s.Notes, Annotation{Key: key, Value: value})
}

// Annotatef attaches a formatted note.
func (s *Span) Annotatef(key, format string, args ...any) {
	if s == nil {
		return
	}
	s.Notes = append(s.Notes, Annotation{Key: key, Value: fmt.Sprintf(format, args...)})
}

// End closes the span at the current runtime time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndAt(s.tr.rt.Now())
}

// EndErr closes the span, marking it failed when err is non-nil.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.Failed = true
		s.Err = err.Error()
	}
	s.EndAt(s.tr.rt.Now())
}

// Fail marks the span failed without closing it.
func (s *Span) Fail(err error) {
	if s == nil {
		return
	}
	s.Failed = true
	if err != nil {
		s.Err = err.Error()
	}
}

// EndAt closes the span at an explicit runtime time (for spans reconstructed
// after the fact, e.g. a message whose delivery time is known on arrival).
func (s *Span) EndAt(t time.Duration) {
	if s == nil || s.done {
		return
	}
	s.done = true
	s.Finish = t
	if s.installed {
		s.tr.rt.SetTaskLocal(taskLocalFor(s.prev))
	}
	s.tr.emit(s)
}

// taskLocalFor boxes a span for SetTaskLocal, mapping a nil *Span to a nil
// interface so the runtime clears the slot instead of storing a typed nil.
func taskLocalFor(s *Span) any {
	if s == nil {
		return nil
	}
	return s
}

// Tracer creates spans, tracks the task-current span via sim task-locals,
// and retains completed spans in a ring buffer for trace assembly. A nil
// *Tracer disables everything at zero cost.
type Tracer struct {
	rt sim.Runtime

	mu     sync.Mutex
	nextID uint64
	ring   []*Span // completed spans, ring[head] is the oldest
	head   int
	size   int
	byName map[string]*stats.Summary // span name → duration summary (µs)
	order  []string
}

func newTracer(rt sim.Runtime, ringCap int) *Tracer {
	return &Tracer{
		rt:     rt,
		ring:   make([]*Span, ringCap),
		byName: make(map[string]*stats.Summary),
	}
}

func (t *Tracer) newID() uint64 {
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return id
}

// Current returns the calling task's current span (nil when none, or when
// the tracer is disabled).
func (t *Tracer) Current() *Span {
	if t == nil {
		return nil
	}
	if s, ok := t.rt.TaskLocal().(*Span); ok {
		return s
	}
	return nil
}

// StartRoot opens a new trace with name as its root span and installs it as
// the task-current span.
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil {
		return nil
	}
	id := t.newID()
	s := &Span{
		tr:        t,
		Trace:     TraceID(id),
		ID:        SpanID(id),
		Name:      name,
		Start:     t.rt.Now(),
		prev:      t.Current(),
		installed: true,
	}
	t.rt.SetTaskLocal(s)
	return s
}

// Start opens a child of the task-current span (or a new root when there is
// none) and installs it as task-current. End restores the previous span.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	cur := t.Current()
	if cur == nil {
		return t.StartRoot(name)
	}
	s := &Span{
		tr:        t,
		Trace:     cur.Trace,
		ID:        SpanID(t.newID()),
		Parent:    cur.ID,
		Name:      name,
		Start:     t.rt.Now(),
		prev:      cur,
		installed: true,
	}
	t.rt.SetTaskLocal(s)
	return s
}

// Child opens a child of the task-current span and installs it, or returns
// nil (recording nothing) when the task is not inside a traced operation —
// for mid-stack instrumentation (network fan-out, storage internals) that
// should never root a trace of its own.
func (t *Tracer) Child(name string) *Span {
	if t == nil || t.Current() == nil {
		return nil
	}
	return t.Start(name)
}

// StartAt opens a child of an explicit parent context at an explicit start
// time and installs it as task-current — the handler-side serve span: the
// remote task adopts the caller's context carried over the wire.
func (t *Tracer) StartAt(parent SpanContext, name string, start time.Duration) *Span {
	if t == nil || parent.Trace == 0 {
		return nil
	}
	s := &Span{
		tr:        t,
		Trace:     parent.Trace,
		ID:        SpanID(t.newID()),
		Parent:    parent.Span,
		Name:      name,
		Start:     start,
		prev:      t.Current(),
		installed: true,
	}
	t.rt.SetTaskLocal(s)
	return s
}

// Detached opens a child of an explicit parent context WITHOUT installing it
// as task-current — for work measured by a task that is itself blocked, such
// as the caller's view of an RPC in flight.
func (t *Tracer) Detached(parent SpanContext, name string, start time.Duration) *Span {
	if t == nil || parent.Trace == 0 {
		return nil
	}
	return &Span{
		tr:     t,
		Trace:  parent.Trace,
		ID:     SpanID(t.newID()),
		Parent: parent.Span,
		Name:   name,
		Start:  start,
	}
}

// SpanAt records an already-completed interval as a child of parent — how
// the network emits NIC-wait / transit / CPU-queue components whose bounds
// are computed rather than observed live.
func (t *Tracer) SpanAt(parent SpanContext, name string, start, end time.Duration, notes ...Annotation) {
	if t == nil || parent.Trace == 0 {
		return
	}
	s := &Span{
		tr:     t,
		Trace:  parent.Trace,
		ID:     SpanID(t.newID()),
		Parent: parent.Span,
		Name:   name,
		Start:  start,
		Finish: end,
		Notes:  notes,
		done:   true,
	}
	t.emit(s)
}

// emit retires a completed span into the ring and the per-name aggregates.
func (t *Tracer) emit(s *Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) > 0 {
		if t.size < len(t.ring) {
			t.ring[(t.head+t.size)%len(t.ring)] = s
			t.size++
		} else {
			t.ring[t.head] = s
			t.head = (t.head + 1) % len(t.ring)
		}
	}
	sum, ok := t.byName[s.Name]
	if !ok {
		sum = &stats.Summary{}
		t.byName[s.Name] = sum
		t.order = append(t.order, s.Name)
	}
	sum.Add(float64(s.Finish-s.Start) / float64(time.Microsecond))
}

// NameStat is one row of the per-span-name aggregate view.
type NameStat struct {
	Name  string
	Count int64
	Mean  time.Duration
	Max   time.Duration
}

// StatsByName returns mean durations aggregated over every completed span,
// independent of ring eviction (first-seen order). This is what the Fig 5b
// breakdown is derived from.
func (t *Tracer) StatsByName() []NameStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]NameStat, 0, len(t.order))
	for _, name := range t.order {
		s := t.byName[name]
		out = append(out, NameStat{
			Name:  name,
			Count: s.N(),
			Mean:  time.Duration(s.Mean() * float64(time.Microsecond)),
			Max:   time.Duration(s.Max() * float64(time.Microsecond)),
		})
	}
	return out
}

// snapshot returns the retained spans, oldest first.
func (t *Tracer) snapshot() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, 0, t.size)
	for i := 0; i < t.size; i++ {
		out = append(out, t.ring[(t.head+i)%len(t.ring)])
	}
	return out
}

// TraceIDs lists the distinct traces with retained spans, most recent last,
// capped at limit (0 = all).
func (t *Tracer) TraceIDs(limit int) []TraceID {
	if t == nil {
		return nil
	}
	seen := make(map[TraceID]bool)
	var ids []TraceID
	for _, s := range t.snapshot() {
		if !seen[s.Trace] {
			seen[s.Trace] = true
			ids = append(ids, s.Trace)
		}
	}
	if limit > 0 && len(ids) > limit {
		ids = ids[len(ids)-limit:]
	}
	return ids
}

// SpanNode is a span with its children resolved — one node of the trace tree.
type SpanNode struct {
	Span     *Span
	Children []*SpanNode
}

// Trace assembles the span tree for one trace from the retained spans.
// Roots are spans whose parent is absent from the buffer (evicted parents
// degrade gracefully into extra roots rather than losing subtrees).
func (t *Tracer) Trace(id TraceID) []*SpanNode {
	if t == nil {
		return nil
	}
	var spans []*Span
	for _, s := range t.snapshot() {
		if s.Trace == id {
			spans = append(spans, s)
		}
	}
	return buildTree(spans)
}

func buildTree(spans []*Span) []*SpanNode {
	nodes := make(map[SpanID]*SpanNode, len(spans))
	for _, s := range spans {
		nodes[s.ID] = &SpanNode{Span: s}
	}
	var roots []*SpanNode
	for _, s := range spans {
		n := nodes[s.ID]
		if p, ok := nodes[s.Parent]; ok && s.Parent != s.ID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	sortNodes(roots)
	for _, n := range nodes {
		sortNodes(n.Children)
	}
	return roots
}

func sortNodes(ns []*SpanNode) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Span.Start != ns[j].Span.Start {
			return ns[i].Span.Start < ns[j].Span.Start
		}
		return ns[i].Span.ID < ns[j].Span.ID
	})
}

// WriteTree renders a trace's span tree indented, one span per line:
//
//	music.acquireLock                 12.3ms  [@ 1.002s]
//	  rpc:lock.peek                    4.1ms
//	    net.transit                    2.0ms
//
// Durations use the experiment tables' formatting.
func (t *Tracer) WriteTree(w io.Writer, id TraceID) {
	if t == nil {
		return
	}
	roots := t.Trace(id)
	if len(roots) == 0 {
		fmt.Fprintf(w, "trace %d: no spans retained\n", id)
		return
	}
	base := roots[0].Span.Start
	var walk func(n *SpanNode, depth int)
	walk = func(n *SpanNode, depth int) {
		s := n.Span
		name := strings.Repeat("  ", depth) + s.Name
		status := ""
		if s.Failed {
			status = "  FAILED"
			if s.Err != "" {
				status += " (" + s.Err + ")"
			}
		}
		var notes string
		if len(s.Notes) > 0 {
			parts := make([]string, len(s.Notes))
			for i, a := range s.Notes {
				parts[i] = a.Key + "=" + a.Value
			}
			notes = "  {" + strings.Join(parts, " ") + "}"
		}
		fmt.Fprintf(w, "%-52s %10s  [+%s]%s%s\n",
			name, stats.FormatDuration(s.Finish-s.Start),
			stats.FormatDuration(s.Start-base), status, notes)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}

// SpanJSON is the wire form of one span for the /traces endpoint.
type SpanJSON struct {
	Trace    uint64       `json:"trace"`
	ID       uint64       `json:"id"`
	Parent   uint64       `json:"parent,omitempty"`
	Name     string       `json:"name"`
	StartUS  int64        `json:"start_us"`
	EndUS    int64        `json:"end_us"`
	Failed   bool         `json:"failed,omitempty"`
	Err      string       `json:"err,omitempty"`
	Notes    []Annotation `json:"notes,omitempty"`
	Children []SpanJSON   `json:"children,omitempty"`
}

// TraceJSON renders one trace's tree in wire form.
func (t *Tracer) TraceJSON(id TraceID) []SpanJSON {
	if t == nil {
		return nil
	}
	return nodesJSON(t.Trace(id))
}

func nodesJSON(ns []*SpanNode) []SpanJSON {
	if len(ns) == 0 {
		return nil
	}
	out := make([]SpanJSON, 0, len(ns))
	for _, n := range ns {
		s := n.Span
		out = append(out, SpanJSON{
			Trace:    uint64(s.Trace),
			ID:       uint64(s.ID),
			Parent:   uint64(s.Parent),
			Name:     s.Name,
			StartUS:  int64(s.Start / time.Microsecond),
			EndUS:    int64(s.Finish / time.Microsecond),
			Failed:   s.Failed,
			Err:      s.Err,
			Notes:    s.Notes,
			Children: nodesJSON(n.Children),
		})
	}
	return out
}
