package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Labels attach dimensions (site, node, service, …) to a metric. A metric
// identity is its name plus the full label set.
type Labels map[string]string

// labelKey renders labels canonically (sorted) for map keys and exposition.
func labelKey(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}

// Counter is a monotonically increasing metric. All methods are safe on a
// nil receiver (the disabled path) and for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be ≥ 0 for the counter to stay monotonic).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time value that can move both ways.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add shifts the gauge by n (use negative n to decrement).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket latency histogram (the log-spaced buckets of
// internal/stats, 1µs .. ~17min) guarded by a mutex — observation is a few
// array increments, cheap enough for hot paths when enabled and a nil-check
// when not.
type Histogram struct {
	mu sync.Mutex
	h  *stats.Histogram
}

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.h.Observe(d)
	h.mu.Unlock()
}

// Snapshot copies the underlying histogram for reporting.
func (h *Histogram) Snapshot() *stats.Histogram {
	if h == nil {
		return stats.NewHistogram()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := stats.NewHistogram()
	out.Merge(h.h)
	return out
}

// Registry holds every registered metric. Metric handles are resolved once
// at setup time (registration takes a lock; the returned handle is then
// lock-free for counters/gauges), and a nil *Registry disables everything.
type Registry struct {
	rt sim.Runtime

	mu     sync.Mutex
	series map[string]*series // name+labels → series
	order  []string           // registration order, for stable exposition
}

type series struct {
	name   string
	labels Labels
	kind   string // "counter" | "gauge" | "histogram"
	c      *Counter
	g      *Gauge
	h      *Histogram
}

func newRegistry(rt sim.Runtime) *Registry {
	return &Registry{rt: rt, series: make(map[string]*series)}
}

func (r *Registry) lookup(name string, labels Labels, kind string) *series {
	key := name + "{" + labelKey(labels) + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[key]
	if !ok {
		s = &series{name: name, labels: labels, kind: kind}
		switch kind {
		case "counter":
			s.c = &Counter{}
		case "gauge":
			s.g = &Gauge{}
		case "histogram":
			s.h = &Histogram{h: stats.NewHistogram()}
		}
		r.series[key] = s
		r.order = append(r.order, key)
	}
	if s.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", key, s.kind, kind))
	}
	return s
}

// Counter returns (registering on first use) the counter name{labels}.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, "counter").c
}

// Gauge returns (registering on first use) the gauge name{labels}.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, "gauge").g
}

// Histogram returns (registering on first use) the histogram name{labels}.
func (r *Registry) Histogram(name string, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, "histogram").h
}

// MetricPoint is one exported sample.
type MetricPoint struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"`
	Value  float64           `json:"value"`
}

// Snapshot exports every series; histograms expand into count / mean_us /
// p50_us / p95_us / p99_us / max_us points.
func (r *Registry) Snapshot() []MetricPoint {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	keys := append([]string(nil), r.order...)
	all := make([]*series, 0, len(keys))
	for _, k := range keys {
		all = append(all, r.series[k])
	}
	r.mu.Unlock()

	var out []MetricPoint
	for _, s := range all {
		switch s.kind {
		case "counter":
			out = append(out, MetricPoint{Name: s.name, Labels: s.labels, Kind: "counter", Value: float64(s.c.Value())})
		case "gauge":
			out = append(out, MetricPoint{Name: s.name, Labels: s.labels, Kind: "gauge", Value: float64(s.g.Value())})
		case "histogram":
			h := s.h.Snapshot()
			us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
			out = append(out,
				MetricPoint{Name: s.name + "_count", Labels: s.labels, Kind: "histogram", Value: float64(h.N())},
				MetricPoint{Name: s.name + "_mean_us", Labels: s.labels, Kind: "histogram", Value: us(h.Mean())},
				MetricPoint{Name: s.name + "_p50_us", Labels: s.labels, Kind: "histogram", Value: us(h.Quantile(0.50))},
				MetricPoint{Name: s.name + "_p95_us", Labels: s.labels, Kind: "histogram", Value: us(h.Quantile(0.95))},
				MetricPoint{Name: s.name + "_p99_us", Labels: s.labels, Kind: "histogram", Value: us(h.Quantile(0.99))},
				MetricPoint{Name: s.name + "_max_us", Labels: s.labels, Kind: "histogram", Value: us(h.Max())},
			)
		}
	}
	return out
}

// WriteText renders the registry in a Prometheus-style text exposition
// (the /metrics wire format).
func (r *Registry) WriteText(w io.Writer) {
	if r == nil {
		return
	}
	for _, p := range r.Snapshot() {
		if len(p.Labels) == 0 {
			fmt.Fprintf(w, "%s %g\n", p.Name, p.Value)
			continue
		}
		fmt.Fprintf(w, "%s{%s} %g\n", p.Name, labelKey(p.Labels), p.Value)
	}
}
