package obs

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestDisabledPathZeroAlloc proves the core claim: with observability off
// (nil receivers everywhere) the instrumented hot paths allocate nothing.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var o *Obs
	tr := o.Tracer()
	reg := o.Metrics()
	if tr != nil || reg != nil {
		t.Fatal("nil Obs must yield nil halves")
	}
	allocs := testing.AllocsPerRun(100, func() {
		s := tr.Start("op")
		s.Annotate("k", "v")
		s.EndErr(nil)
		tr.SpanAt(s.Context(), "sub", 0, 0)
		c := reg.Counter("x", nil)
		c.Inc()
		c.Add(3)
		reg.Gauge("g", nil).Set(7)
		reg.Histogram("h", nil).Observe(time.Millisecond)
		_ = tr.Current()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocated %v times per run, want 0", allocs)
	}
}

func TestMetricsRegistry(t *testing.T) {
	rt := sim.NewReal(1)
	o := New(rt, Options{})
	reg := o.Metrics()

	c := reg.Counter("rpc_total", Labels{"site": "IE", "svc": "store.apply"})
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels resolves to the same counter.
	reg.Counter("rpc_total", Labels{"svc": "store.apply", "site": "IE"}).Inc()
	if got := c.Value(); got != 6 {
		t.Fatalf("counter after re-lookup = %d, want 6", got)
	}

	g := reg.Gauge("queue_depth", nil)
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}

	h := reg.Histogram("lat", Labels{"op": "put"})
	h.Observe(2 * time.Millisecond)
	h.Observe(4 * time.Millisecond)
	snap := h.Snapshot()
	if snap.N() != 2 || snap.Mean() != 3*time.Millisecond {
		t.Fatalf("histogram n=%d mean=%v, want 2 / 3ms", snap.N(), snap.Mean())
	}

	var b strings.Builder
	reg.WriteText(&b)
	text := b.String()
	for _, want := range []string{
		`rpc_total{site="IE",svc="store.apply"} 6`,
		"queue_depth 7",
		`lat_count{op="put"} 2`,
		`lat_mean_us{op="put"} 3000`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestTracerVirtualTime drives a small span tree under virtual time and
// checks parentage, durations, per-name stats and the rendered tree.
func TestTracerVirtualTime(t *testing.T) {
	rt := sim.New(1)
	var o *Obs
	err := rt.Run(func() {
		o = New(rt, Options{SpanRing: 16})
		tr := o.Tracer()

		root := tr.StartRoot("op.outer")
		if tr.Current() != root {
			t.Error("root not installed as task-current")
		}
		rt.Sleep(time.Millisecond)

		child := tr.Start("op.inner")
		if child.Parent != root.ID || child.Trace != root.Trace {
			t.Errorf("child parentage wrong: %+v", child)
		}
		rt.Sleep(2 * time.Millisecond)
		tr.SpanAt(child.Context(), "op.leaf", child.Start, child.Start+time.Millisecond)
		child.End()
		if tr.Current() != root {
			t.Error("End did not restore the previous task-current span")
		}
		rt.Sleep(time.Millisecond)
		root.End()
		if tr.Current() != nil {
			t.Error("ending the root left a task-current span")
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	tr := o.Tracer()
	ids := tr.TraceIDs(0)
	if len(ids) != 1 {
		t.Fatalf("TraceIDs = %v, want one trace", ids)
	}
	roots := tr.Trace(ids[0])
	if len(roots) != 1 || roots[0].Span.Name != "op.outer" {
		t.Fatalf("trace roots = %+v", roots)
	}
	if d := roots[0].Span.Finish - roots[0].Span.Start; d != 4*time.Millisecond {
		t.Errorf("outer duration = %v, want 4ms", d)
	}
	if len(roots[0].Children) != 1 || roots[0].Children[0].Span.Name != "op.inner" {
		t.Fatalf("outer children = %+v", roots[0].Children)
	}
	inner := roots[0].Children[0]
	if len(inner.Children) != 1 || inner.Children[0].Span.Name != "op.leaf" {
		t.Fatalf("inner children = %+v", inner.Children)
	}

	byName := map[string]NameStat{}
	for _, ns := range tr.StatsByName() {
		byName[ns.Name] = ns
	}
	if byName["op.inner"].Mean != 2*time.Millisecond {
		t.Errorf("op.inner mean = %v, want 2ms", byName["op.inner"].Mean)
	}

	var b strings.Builder
	tr.WriteTree(&b, ids[0])
	tree := b.String()
	for _, want := range []string{"op.outer", "  op.inner", "    op.leaf"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
}

// TestSpanInheritanceAcrossGo checks that a task spawned with rt.Go inherits
// the spawner's current span, so child work lands in the right trace.
func TestSpanInheritanceAcrossGo(t *testing.T) {
	rt := sim.New(1)
	var o *Obs
	err := rt.Run(func() {
		o = New(rt, Options{})
		tr := o.Tracer()
		root := tr.StartRoot("parent")
		done := sim.NewPromise[struct{}](rt)
		rt.Go(func() {
			child := tr.Start("spawned")
			if child.Trace != root.Trace || child.Parent != root.ID {
				t.Errorf("spawned task span not parented under root: %+v", child)
			}
			child.End()
			done.Resolve(struct{}{})
		})
		done.Await()
		root.End()
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(o.Tracer().TraceIDs(0)); n != 1 {
		t.Fatalf("expected a single trace, got %d", n)
	}
}

// TestDetachedAndFailed covers the RPC-shaped spans: detached children that
// are never installed, and failure marking.
func TestDetachedAndFailed(t *testing.T) {
	rt := sim.New(1)
	err := rt.Run(func() {
		o := New(rt, Options{})
		tr := o.Tracer()
		root := tr.StartRoot("caller")
		d := tr.Detached(root.Context(), "rpc:thing", rt.Now())
		if tr.Current() != root {
			t.Error("Detached must not install itself")
		}
		rt.Sleep(time.Millisecond)
		d.EndErr(sim.ErrTimeout)
		root.End()

		roots := tr.Trace(root.Trace)
		if len(roots) != 1 || len(roots[0].Children) != 1 {
			t.Fatalf("tree shape wrong: %+v", roots)
		}
		rpc := roots[0].Children[0].Span
		if !rpc.Failed || !strings.Contains(rpc.Err, "timeout") {
			t.Errorf("rpc span not marked failed: %+v", rpc)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRingEviction verifies StatsByName survives ring wraparound.
func TestRingEviction(t *testing.T) {
	rt := sim.NewReal(1)
	tr := New(rt, Options{SpanRing: 4}).Tracer()
	for i := 0; i < 10; i++ {
		tr.StartRoot("op").End()
	}
	if n := len(tr.snapshot()); n != 4 {
		t.Fatalf("ring holds %d spans, want 4", n)
	}
	st := tr.StatsByName()
	if len(st) != 1 || st[0].Count != 10 {
		t.Fatalf("StatsByName = %+v, want op count 10", st)
	}
}

func TestRealRuntimeTaskLocals(t *testing.T) {
	rt := sim.NewReal(1)
	tr := New(rt, Options{}).Tracer()
	root := tr.StartRoot("real.root")
	done := make(chan *Span, 1)
	rt.Go(func() {
		c := tr.Start("real.child")
		c.End()
		done <- c
	})
	c := <-done
	if c.Trace != root.Trace || c.Parent != root.ID {
		t.Fatalf("goroutine did not inherit span context: %+v", c)
	}
	root.End()
	if tr.Current() != nil {
		t.Fatal("root End left a task-current span on the real runtime")
	}
}
