package ycsb

import (
	"math/rand"
	"testing"
)

func TestWorkloadMixes(t *testing.T) {
	tests := []struct {
		workload    string
		wantUpdates func(u, n int) bool
	}{
		{WorkloadR, func(u, n int) bool { return u == 0 }},
		{WorkloadU, func(u, n int) bool { return u == n }},
		{WorkloadUR, func(u, n int) bool { return u > n/3 && u < 2*n/3 }},
	}
	for _, tt := range tests {
		g, err := NewGenerator(Config{Workload: tt.workload}, 42)
		if err != nil {
			t.Fatalf("%s: %v", tt.workload, err)
		}
		const n = 2000
		updates := 0
		for i := 0; i < n; i++ {
			op := g.Next()
			if op.Kind == Update {
				updates++
				if len(op.Value) != 10 {
					t.Fatalf("%s: value size %d, want 10", tt.workload, len(op.Value))
				}
			}
		}
		if !tt.wantUpdates(updates, n) {
			t.Errorf("%s: %d/%d updates", tt.workload, updates, n)
		}
	}
}

func TestUnknownWorkloadRejected(t *testing.T) {
	if _, err := NewGenerator(Config{Workload: "X"}, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestKeysWithinKeyspace(t *testing.T) {
	g, err := NewGenerator(Config{Workload: WorkloadU, Records: 50}, 7)
	if err != nil {
		t.Fatal(err)
	}
	keys := make(map[string]bool)
	for i := 0; i < 5000; i++ {
		keys[g.Next().Key] = true
	}
	if len(keys) > 50 {
		t.Fatalf("%d distinct keys exceed keyspace 50", len(keys))
	}
	all := g.Keys()
	if len(all) != 50 {
		t.Fatalf("Keys = %d", len(all))
	}
	for k := range keys {
		found := false
		for _, a := range all {
			if a == k {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("generated key %q outside keyspace", k)
		}
	}
}

func TestZipfianIsSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := NewZipfian(1000, 0.99, rng)
	counts := make([]int, 1000)
	const draws = 50000
	for i := 0; i < draws; i++ {
		idx := z.Next()
		if idx < 0 || idx >= 1000 {
			t.Fatalf("draw %d out of range", idx)
		}
		counts[idx]++
	}
	// The hottest item must dominate: YCSB's zipfian(0.99) gives item 0
	// roughly 13% of the mass for n=1000.
	if frac := float64(counts[0]) / draws; frac < 0.05 {
		t.Fatalf("hottest item drew %.3f of mass, want > 0.05", frac)
	}
	// Head heavier than tail.
	head, tail := 0, 0
	for i := 0; i < 10; i++ {
		head += counts[i]
	}
	for i := 990; i < 1000; i++ {
		tail += counts[i]
	}
	if head <= tail*10 {
		t.Fatalf("head %d not ≫ tail %d", head, tail)
	}
}

func TestZipfianDeterministicPerSeed(t *testing.T) {
	draw := func() []int {
		z := NewZipfian(100, 0.99, rand.New(rand.NewSource(5)))
		out := make([]int, 20)
		for i := range out {
			out[i] = z.Next()
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequences diverge: %v vs %v", a, b)
		}
	}
}

func TestUniformDistribution(t *testing.T) {
	g, err := NewGenerator(Config{Workload: WorkloadU, Records: 100, Distribution: DistUniform}, 9)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const draws = 50000
	for i := 0; i < draws; i++ {
		counts[g.Next().Key]++
	}
	if len(counts) != 100 {
		t.Fatalf("uniform over 100 records drew %d distinct keys", len(counts))
	}
	// Every key should be near draws/100 = 500; a Zipfian head would be ~10x.
	for k, c := range counts {
		if c < 300 || c > 700 {
			t.Fatalf("key %s drew %d times, want ~500 (uniform)", k, c)
		}
	}
}

func TestUnknownDistributionRejected(t *testing.T) {
	if _, err := NewGenerator(Config{Workload: WorkloadU, Distribution: "latest"}, 1); err == nil {
		t.Fatal("unknown distribution accepted")
	}
}

func TestZetaCache(t *testing.T) {
	a := zeta(100000, 0.99)
	b := zeta(100000, 0.99)
	if a != b {
		t.Fatalf("cached zeta differs: %v vs %v", a, b)
	}
	zetaCache.Lock()
	_, ok := zetaCache.m[zetaKey{100000, 0.99}]
	zetaCache.Unlock()
	if !ok {
		t.Fatal("zeta(100000, 0.99) not cached")
	}
}

func TestCollisionRateWithZipfianKeys(t *testing.T) {
	// Sanity for the Fig 9 setup: with a few concurrent threads drawing
	// Zipfian keys from a 1000-record space, same-key collisions happen but
	// are rare (the paper saw ~5.5%).
	gens := make([]*Generator, 4)
	for i := range gens {
		g, err := NewGenerator(Config{Workload: WorkloadU}, int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		gens[i] = g
	}
	collisions, total := 0, 0
	for round := 0; round < 2000; round++ {
		seen := make(map[string]bool, 4)
		for _, g := range gens {
			k := g.Next().Key
			if seen[k] {
				collisions++
			}
			seen[k] = true
			total++
		}
	}
	rate := float64(collisions) / float64(total)
	if rate == 0 || rate > 0.3 {
		t.Fatalf("collision rate = %.4f, want small but nonzero", rate)
	}
}
