// Package ycsb generates YCSB-style workloads (Cooper et al., SoCC 2010)
// for the paper's Fig 9 comparison: read-only (R), half-and-half (UR) and
// update-only (U) operation mixes over a keyspace chosen with a Zipfian
// distribution — the skew that produces the ~5.5% lock collisions the paper
// reports.
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// OpKind is a workload operation type.
type OpKind int

// Operation kinds.
const (
	Read OpKind = iota + 1
	Update
)

// Workload names from the paper's Fig 9.
const (
	WorkloadR  = "R"  // 100% reads
	WorkloadUR = "UR" // 50% reads, 50% updates
	WorkloadU  = "U"  // 100% updates
)

// Request distributions over the keyspace.
const (
	// DistZipfian is YCSB's default hot-key skew (the paper's Fig 9 setting).
	DistZipfian = "zipfian"
	// DistUniform draws every key with equal probability — the standard
	// YCSB "uniform" requestdistribution setting, used by the scale-out campaign
	// where throughput rather than contention is under test.
	DistUniform = "uniform"
)

// Config describes a workload.
type Config struct {
	// Workload selects the op mix: WorkloadR, WorkloadUR or WorkloadU.
	Workload string
	// Records is the keyspace size. Defaults to 1000.
	Records int
	// ValueSize is the update payload size in bytes. Defaults to 10
	// (the paper's default data size).
	ValueSize int
	// Theta is the Zipfian skew parameter. Defaults to 0.99 (YCSB's
	// standard constant). Ignored when Distribution is DistUniform.
	Theta float64
	// Distribution selects how keys are drawn: DistZipfian (default) or
	// DistUniform.
	Distribution string
}

// Op is one generated operation.
type Op struct {
	Kind  OpKind
	Key   string
	Value []byte
}

// Generator produces operations. Not safe for concurrent use; give each
// load-generator thread its own (seeded) Generator.
type Generator struct {
	cfg Config
	rng *rand.Rand
	zip *Zipfian
	val []byte
}

// NewGenerator builds a generator for cfg with its own RNG.
func NewGenerator(cfg Config, seed int64) (*Generator, error) {
	if cfg.Records == 0 {
		cfg.Records = 1000
	}
	if cfg.ValueSize == 0 {
		cfg.ValueSize = 10
	}
	if cfg.Theta == 0 {
		cfg.Theta = 0.99
	}
	if cfg.Distribution == "" {
		cfg.Distribution = DistZipfian
	}
	switch cfg.Workload {
	case WorkloadR, WorkloadUR, WorkloadU:
	default:
		return nil, fmt.Errorf("ycsb: unknown workload %q", cfg.Workload)
	}
	rng := rand.New(rand.NewSource(seed))
	val := make([]byte, cfg.ValueSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	g := &Generator{cfg: cfg, rng: rng, val: val}
	switch cfg.Distribution {
	case DistZipfian:
		g.zip = NewZipfian(cfg.Records, cfg.Theta, rng)
	case DistUniform:
	default:
		return nil, fmt.Errorf("ycsb: unknown distribution %q", cfg.Distribution)
	}
	return g, nil
}

// Next returns the next operation.
func (g *Generator) Next() Op {
	idx := 0
	if g.zip != nil {
		idx = g.zip.Next()
	} else {
		idx = g.rng.Intn(g.cfg.Records)
	}
	key := fmt.Sprintf("user%06d", idx)
	kind := Read
	switch g.cfg.Workload {
	case WorkloadU:
		kind = Update
	case WorkloadUR:
		if g.rng.Intn(2) == 0 {
			kind = Update
		}
	}
	op := Op{Kind: kind, Key: key}
	if kind == Update {
		op.Value = g.val
	}
	return op
}

// Keys enumerates the full keyspace (for preloading).
func (g *Generator) Keys() []string {
	out := make([]string, g.cfg.Records)
	for i := range out {
		out[i] = fmt.Sprintf("user%06d", i)
	}
	return out
}

// Zipfian draws integers in [0, n) with P(i) ∝ 1/(i+1)^theta, using the
// Gray et al. rejection-inversion method as in the YCSB reference
// implementation.
type Zipfian struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	rng   *rand.Rand
}

// NewZipfian precomputes the distribution constants for n items.
func NewZipfian(n int, theta float64, rng *rand.Rand) *Zipfian {
	z := &Zipfian{n: n, theta: theta, rng: rng}
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

// zetaCache memoises zeta(n, theta): the harmonic sum is O(n) and the
// scale campaign builds hundreds of generators over million-key spaces,
// all sharing a handful of (n, theta) pairs.
var zetaCache struct {
	sync.Mutex
	m map[zetaKey]float64
}

type zetaKey struct {
	n     int
	theta float64
}

func zeta(n int, theta float64) float64 {
	k := zetaKey{n, theta}
	zetaCache.Lock()
	if v, ok := zetaCache.m[k]; ok {
		zetaCache.Unlock()
		return v
	}
	zetaCache.Unlock()
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	zetaCache.Lock()
	if zetaCache.m == nil {
		zetaCache.m = make(map[zetaKey]float64)
	}
	zetaCache.m[k] = sum
	zetaCache.Unlock()
	return sum
}

// Next draws the next item. Item 0 is the hottest.
func (z *Zipfian) Next() int {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	idx := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if idx >= z.n {
		idx = z.n - 1
	}
	return idx
}
