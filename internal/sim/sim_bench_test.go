package sim

import (
	"testing"
	"time"
)

// BenchmarkVirtualTaskSwitch measures the cost of one park/unpark cycle —
// the unit everything in the simulator is built from.
func BenchmarkVirtualTaskSwitch(b *testing.B) {
	v := New(1)
	err := v.Run(func() {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v.Sleep(time.Microsecond)
		}
	})
	if err != nil {
		b.Fatalf("Run: %v", err)
	}
}

// BenchmarkVirtualPingPong measures two tasks exchanging messages through
// mailboxes, the shape of every RPC in the network layer.
func BenchmarkVirtualPingPong(b *testing.B) {
	v := New(1)
	err := v.Run(func() {
		ping := NewMailbox[int](v)
		pong := NewMailbox[int](v)
		v.Go(func() {
			for {
				x, err := ping.Recv()
				if err != nil {
					return
				}
				pong.Send(x)
			}
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ping.Send(i)
			if _, err := pong.Recv(); err != nil {
				b.Fatalf("Recv: %v", err)
			}
		}
		b.StopTimer()
		ping.Close()
	})
	if err != nil {
		b.Fatalf("Run: %v", err)
	}
}

// BenchmarkVirtualTimerFanout measures many timers firing in order.
func BenchmarkVirtualTimerFanout(b *testing.B) {
	v := New(1)
	err := v.Run(func() {
		b.ResetTimer()
		fired := 0
		for i := 0; i < b.N; i++ {
			v.After(time.Duration(i)*time.Microsecond, func() { fired++ })
		}
		v.Sleep(time.Duration(b.N+1) * time.Microsecond)
		if fired != b.N {
			b.Fatalf("fired = %d, want %d", fired, b.N)
		}
	})
	if err != nil {
		b.Fatalf("Run: %v", err)
	}
}
