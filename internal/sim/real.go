package sim

import (
	"bytes"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"time"
)

// Real is the wall-clock implementation of Runtime: tasks are plain
// goroutines, Sleep is time.Sleep, and timers are time.AfterFunc. It lets
// the same protocol code that runs under the simulator run live, which the
// examples and musicd use.
type Real struct {
	start time.Time
	rng   *rand.Rand

	localMu sync.Mutex
	locals  map[uint64]any // goroutine id → task-local value
}

var _ Runtime = (*Real)(nil)

// NewReal returns a wall-clock runtime seeded with seed.
func NewReal(seed int64) *Real {
	return NewRealAt(time.Now(), seed)
}

// NewRealAt is NewReal with an explicit epoch: Now reports wall time elapsed
// since start instead of since construction. Processes that agree on one
// epoch (musicd with -history) produce directly comparable timestamps, so
// their recorded histories merge into a single checkable timeline.
func NewRealAt(start time.Time, seed int64) *Real {
	return &Real{
		start:  start,
		rng:    rand.New(&lockedSource{src: rand.NewSource(seed).(rand.Source64)}),
		locals: make(map[uint64]any),
	}
}

// Now implements Runtime.
func (r *Real) Now() time.Duration { return time.Since(r.start) }

// Sleep implements Runtime.
func (r *Real) Sleep(d time.Duration) { time.Sleep(d) }

// Go implements Runtime. The spawned goroutine inherits the spawner's
// task-local value (when any tasks carry one at all — the common case of no
// locals skips the goroutine-id lookup entirely).
func (r *Real) Go(fn func()) {
	parent := r.TaskLocal()
	if parent == nil {
		go fn()
		return
	}
	go func() {
		r.SetTaskLocal(parent)
		defer r.SetTaskLocal(nil)
		fn()
	}()
}

// TaskLocal implements Runtime. Wall-clock tasks are identified by their
// goroutine id; the map stays empty until some task sets a local, so the
// disabled-observability path never pays for the id lookup.
func (r *Real) TaskLocal() any {
	r.localMu.Lock()
	empty := len(r.locals) == 0
	r.localMu.Unlock()
	if empty {
		return nil
	}
	id := goroutineID()
	r.localMu.Lock()
	defer r.localMu.Unlock()
	return r.locals[id]
}

// SetTaskLocal implements Runtime.
func (r *Real) SetTaskLocal(v any) {
	id := goroutineID()
	r.localMu.Lock()
	defer r.localMu.Unlock()
	if v == nil {
		delete(r.locals, id)
		return
	}
	r.locals[id] = v
}

// goroutineID parses the current goroutine's id from its stack header
// ("goroutine N [running]: ..."). Only paid when observability is enabled
// on a wall-clock runtime.
func goroutineID() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	s = bytes.TrimPrefix(s, []byte("goroutine "))
	if i := bytes.IndexByte(s, ' '); i >= 0 {
		s = s[:i]
	}
	id, _ := strconv.ParseUint(string(s), 10, 64)
	return id
}

// After implements Runtime.
func (r *Real) After(d time.Duration, fn func()) *Timer {
	t := time.AfterFunc(d, fn)
	return &Timer{stop: t.Stop}
}

// Rand implements Runtime. The returned source is safe for concurrent use.
func (r *Real) Rand() *rand.Rand { return r.rng }

func (r *Real) isRuntime() {}

// lockedSource makes a rand.Source64 safe for concurrent use.
type lockedSource struct {
	mu  sync.Mutex
	src rand.Source64
}

func (s *lockedSource) Int63() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Int63()
}

func (s *lockedSource) Uint64() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Uint64()
}

func (s *lockedSource) Seed(seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.src.Seed(seed)
}
