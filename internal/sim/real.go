package sim

import (
	"math/rand"
	"sync"
	"time"
)

// Real is the wall-clock implementation of Runtime: tasks are plain
// goroutines, Sleep is time.Sleep, and timers are time.AfterFunc. It lets
// the same protocol code that runs under the simulator run live, which the
// examples and musicd use.
type Real struct {
	start time.Time
	rng   *rand.Rand
}

var _ Runtime = (*Real)(nil)

// NewReal returns a wall-clock runtime seeded with seed.
func NewReal(seed int64) *Real {
	return &Real{
		start: time.Now(),
		rng:   rand.New(&lockedSource{src: rand.NewSource(seed).(rand.Source64)}),
	}
}

// Now implements Runtime.
func (r *Real) Now() time.Duration { return time.Since(r.start) }

// Sleep implements Runtime.
func (r *Real) Sleep(d time.Duration) { time.Sleep(d) }

// Go implements Runtime.
func (r *Real) Go(fn func()) { go fn() }

// After implements Runtime.
func (r *Real) After(d time.Duration, fn func()) *Timer {
	t := time.AfterFunc(d, fn)
	return &Timer{stop: t.Stop}
}

// Rand implements Runtime. The returned source is safe for concurrent use.
func (r *Real) Rand() *rand.Rand { return r.rng }

func (r *Real) isRuntime() {}

// lockedSource makes a rand.Source64 safe for concurrent use.
type lockedSource struct {
	mu  sync.Mutex
	src rand.Source64
}

func (s *lockedSource) Int63() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Int63()
}

func (s *lockedSource) Uint64() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Uint64()
}

func (s *lockedSource) Seed(seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.src.Seed(seed)
}
