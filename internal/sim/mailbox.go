package sim

import (
	"sync"
	"time"
)

// Mailbox is an unbounded FIFO queue between tasks. Sends never block;
// receives block until an item arrives, the mailbox closes, or an optional
// deadline expires. It is the building block for worker queues and node
// inboxes.
type Mailbox[T any] struct {
	impl mailboxImpl[T]
}

type mailboxImpl[T any] interface {
	send(v T)
	recv(timeout int64) (T, error)
	tryRecv() (T, bool)
	close()
	length() int
}

// ErrClosed is returned by Mailbox.Recv after Close once the queue drains.
var ErrClosed = errClosed{}

type errClosed struct{}

func (errClosed) Error() string { return "sim: mailbox closed" }

// NewMailbox returns an empty mailbox bound to rt.
func NewMailbox[T any](rt Runtime) *Mailbox[T] {
	switch r := rt.(type) {
	case *Virtual:
		return &Mailbox[T]{impl: &vMailbox[T]{v: r}}
	case *Real:
		return &Mailbox[T]{impl: &rMailbox[T]{}}
	default:
		panic("sim: unknown runtime implementation")
	}
}

// Send enqueues v. It never blocks. Sends to a closed mailbox are dropped.
func (m *Mailbox[T]) Send(v T) { m.impl.send(v) }

// Recv dequeues the next item, blocking as needed.
func (m *Mailbox[T]) Recv() (T, error) { return m.impl.recv(-1) }

// RecvTimeout is Recv with a deadline; ErrTimeout if nothing arrives in d.
func (m *Mailbox[T]) RecvTimeout(d time.Duration) (T, error) { return m.impl.recv(int64(d)) }

// TryRecv dequeues without blocking; ok reports whether an item was there.
func (m *Mailbox[T]) TryRecv() (T, bool) { return m.impl.tryRecv() }

// Close marks the mailbox closed; queued items remain receivable, after
// which Recv returns ErrClosed.
func (m *Mailbox[T]) Close() { m.impl.close() }

// Len returns the number of queued items.
func (m *Mailbox[T]) Len() int { return m.impl.length() }

// vMailbox is the virtual-runtime mailbox (single-threaded, lock-free).
type vMailbox[T any] struct {
	v       *Virtual
	q       []T
	closed  bool
	waiters []waiter
}

func (m *vMailbox[T]) send(v T) {
	if m.closed {
		return
	}
	m.q = append(m.q, v)
	m.wakeAll()
}

func (m *vMailbox[T]) wakeAll() {
	for _, w := range m.waiters {
		m.v.unpark(w.t, w.gen)
	}
	m.waiters = nil
}

func (m *vMailbox[T]) recv(timeout int64) (T, error) {
	var deadline time.Duration
	if timeout >= 0 {
		deadline = m.v.now + time.Duration(timeout)
	}
	for {
		if len(m.q) > 0 {
			v := m.q[0]
			m.q = m.q[1:]
			return v, nil
		}
		if m.closed {
			var zero T
			return zero, ErrClosed
		}
		if timeout >= 0 && m.v.now >= deadline {
			var zero T
			return zero, ErrTimeout
		}
		t, gen := m.v.prepare()
		m.waiters = append(m.waiters, waiter{t, gen})
		if timeout >= 0 {
			m.v.wakeAt(deadline, t, gen)
		}
		m.v.park(t)
	}
}

func (m *vMailbox[T]) tryRecv() (T, bool) {
	if len(m.q) == 0 {
		var zero T
		return zero, false
	}
	v := m.q[0]
	m.q = m.q[1:]
	return v, true
}

func (m *vMailbox[T]) close() {
	if m.closed {
		return
	}
	m.closed = true
	m.wakeAll()
}

func (m *vMailbox[T]) length() int { return len(m.q) }

// rMailbox is the wall-clock mailbox (mutex + signal channels).
type rMailbox[T any] struct {
	mu      sync.Mutex
	q       []T
	closed  bool
	waiters []chan struct{}
}

func (m *rMailbox[T]) send(v T) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.q = append(m.q, v)
	m.signalLocked()
}

func (m *rMailbox[T]) signalLocked() {
	for _, w := range m.waiters {
		close(w)
	}
	m.waiters = nil
}

func (m *rMailbox[T]) recv(timeout int64) (T, error) {
	var timer <-chan time.Time
	if timeout >= 0 {
		timer = newTimeoutChan(time.Duration(timeout))
	}
	for {
		m.mu.Lock()
		if len(m.q) > 0 {
			v := m.q[0]
			m.q = m.q[1:]
			m.mu.Unlock()
			return v, nil
		}
		if m.closed {
			m.mu.Unlock()
			var zero T
			return zero, ErrClosed
		}
		sig := make(chan struct{})
		m.waiters = append(m.waiters, sig)
		m.mu.Unlock()

		if timer == nil {
			<-sig
			continue
		}
		select {
		case <-sig:
		case <-timer:
			var zero T
			return zero, ErrTimeout
		}
	}
}

func (m *rMailbox[T]) tryRecv() (T, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.q) == 0 {
		var zero T
		return zero, false
	}
	v := m.q[0]
	m.q = m.q[1:]
	return v, true
}

func (m *rMailbox[T]) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	m.signalLocked()
}

func (m *rMailbox[T]) length() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.q)
}

// newTimeoutChan returns a channel that fires after d of wall-clock time.
func newTimeoutChan(d time.Duration) <-chan time.Time { return time.After(d) }
