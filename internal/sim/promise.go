package sim

import (
	"sync"
	"time"
)

// Promise is a one-shot value passed between tasks: one side resolves or
// rejects it, the other awaits it. It backs every RPC reply in the network
// layer. Await may be called by multiple tasks; all observe the same result.
type Promise[T any] struct {
	impl promiseImpl[T]
}

type promiseImpl[T any] interface {
	resolve(v T, err error)
	await(timeout int64) (T, error) // timeout in nanoseconds; <0 means none
	done() bool
}

// NewPromise returns an unresolved promise bound to rt.
func NewPromise[T any](rt Runtime) *Promise[T] {
	switch r := rt.(type) {
	case *Virtual:
		return &Promise[T]{impl: &vPromise[T]{v: r}}
	case *Real:
		return &Promise[T]{impl: &rPromise[T]{ch: make(chan struct{})}}
	default:
		panic("sim: unknown runtime implementation")
	}
}

// Resolve fulfills the promise with v. Later resolutions are ignored.
func (p *Promise[T]) Resolve(v T) { p.impl.resolve(v, nil) }

// Reject fails the promise with err. Later resolutions are ignored.
func (p *Promise[T]) Reject(err error) {
	var zero T
	p.impl.resolve(zero, err)
}

// Await blocks until the promise settles and returns its result.
func (p *Promise[T]) Await() (T, error) { return p.impl.await(-1) }

// AwaitTimeout is Await with a deadline; it returns ErrTimeout if the
// promise has not settled within d.
func (p *Promise[T]) AwaitTimeout(d time.Duration) (T, error) { return p.impl.await(int64(d)) }

// Done reports whether the promise has settled.
func (p *Promise[T]) Done() bool { return p.impl.done() }

// vPromise is the virtual-runtime promise. Single-threaded scheduling means
// no locking is required.
type vPromise[T any] struct {
	v       *Virtual
	settled bool
	val     T
	err     error
	waiters []waiter
}

type waiter struct {
	t   *vtask
	gen uint64
}

func (p *vPromise[T]) resolve(v T, err error) {
	if p.settled {
		return
	}
	p.settled, p.val, p.err = true, v, err
	for _, w := range p.waiters {
		p.v.unpark(w.t, w.gen)
	}
	p.waiters = nil
}

func (p *vPromise[T]) await(timeout int64) (T, error) {
	var deadline time.Duration
	if timeout >= 0 {
		deadline = p.v.now + time.Duration(timeout)
	}
	for !p.settled {
		if timeout >= 0 && p.v.now >= deadline {
			var zero T
			return zero, ErrTimeout
		}
		t, gen := p.v.prepare()
		p.waiters = append(p.waiters, waiter{t, gen})
		if timeout >= 0 {
			p.v.wakeAt(deadline, t, gen)
		}
		p.v.park(t)
	}
	return p.val, p.err
}

func (p *vPromise[T]) done() bool { return p.settled }

// rPromise is the wall-clock promise, built on a closed channel.
type rPromise[T any] struct {
	mu      sync.Mutex
	settled bool
	val     T
	err     error
	ch      chan struct{}
}

func (p *rPromise[T]) resolve(v T, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.settled {
		return
	}
	p.settled, p.val, p.err = true, v, err
	close(p.ch)
}

func (p *rPromise[T]) await(timeout int64) (T, error) {
	if timeout < 0 {
		<-p.ch
	} else {
		select {
		case <-p.ch:
		case <-newTimeoutChan(time.Duration(timeout)):
			p.mu.Lock()
			settled := p.settled
			p.mu.Unlock()
			if !settled {
				var zero T
				return zero, ErrTimeout
			}
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.val, p.err
}

func (p *rPromise[T]) done() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.settled
}
