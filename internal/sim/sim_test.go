package sim

import (
	"errors"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestVirtualSleepAdvancesClock(t *testing.T) {
	v := New(1)
	var got time.Duration
	err := v.Run(func() {
		v.Sleep(250 * time.Millisecond)
		got = v.Now()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 250*time.Millisecond {
		t.Fatalf("Now after sleep = %v, want 250ms", got)
	}
}

func TestVirtualSleepZeroDoesNotAdvance(t *testing.T) {
	v := New(1)
	err := v.Run(func() {
		v.Sleep(0)
		if v.Now() != 0 {
			t.Errorf("Now = %v, want 0", v.Now())
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestVirtualConcurrentSleepsOverlap(t *testing.T) {
	v := New(1)
	var end time.Duration
	err := v.Run(func() {
		done := NewPromise[struct{}](v)
		v.Go(func() {
			v.Sleep(100 * time.Millisecond)
			done.Resolve(struct{}{})
		})
		v.Sleep(60 * time.Millisecond)
		if _, err := done.Await(); err != nil {
			t.Errorf("Await: %v", err)
		}
		end = v.Now()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if end != 100*time.Millisecond {
		t.Fatalf("overlapping sleeps ended at %v, want 100ms", end)
	}
}

func TestVirtualManyTasksDeterministicOrder(t *testing.T) {
	run := func() []int {
		v := New(42)
		var order []int
		if err := v.Run(func() {
			var wg int
			done := NewMailbox[int](v)
			for i := 0; i < 50; i++ {
				i := i
				wg++
				v.Go(func() {
					v.Sleep(time.Duration(v.Rand().Intn(1000)) * time.Microsecond)
					done.Send(i)
				})
			}
			for ; wg > 0; wg-- {
				id, err := done.Recv()
				if err != nil {
					t.Errorf("Recv: %v", err)
					return
				}
				order = append(order, id)
			}
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return order
	}
	a, b := run(), run()
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("lengths = %d, %d, want 50", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestVirtualDeadlockDetected(t *testing.T) {
	v := New(1)
	err := v.Run(func() {
		p := NewPromise[int](v)
		p.Await() // never resolved
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestVirtualDeadline(t *testing.T) {
	v := New(1)
	v.SetDeadline(time.Second)
	err := v.Run(func() {
		v.Sleep(time.Hour)
	})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
}

func TestVirtualAfterFiresInOrder(t *testing.T) {
	v := New(1)
	var fired []int
	err := v.Run(func() {
		done := NewPromise[struct{}](v)
		v.After(30*time.Millisecond, func() { fired = append(fired, 3) })
		v.After(10*time.Millisecond, func() { fired = append(fired, 1) })
		v.After(20*time.Millisecond, func() {
			fired = append(fired, 2)
		})
		v.After(40*time.Millisecond, func() { done.Resolve(struct{}{}) })
		if _, err := done.Await(); err != nil {
			t.Errorf("Await: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 3 {
		t.Fatalf("fired = %v, want [1 2 3]", fired)
	}
}

func TestVirtualTimerStop(t *testing.T) {
	v := New(1)
	fired := false
	err := v.Run(func() {
		tm := v.After(10*time.Millisecond, func() { fired = true })
		if !tm.Stop() {
			t.Error("Stop = false, want true")
		}
		if tm.Stop() {
			t.Error("second Stop = true, want false")
		}
		v.Sleep(50 * time.Millisecond)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestPromiseResolveBeforeAwait(t *testing.T) {
	v := New(1)
	err := v.Run(func() {
		p := NewPromise[int](v)
		p.Resolve(7)
		got, err := p.Await()
		if err != nil || got != 7 {
			t.Errorf("Await = (%d, %v), want (7, nil)", got, err)
		}
		if !p.Done() {
			t.Error("Done = false after resolve")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestPromiseReject(t *testing.T) {
	boom := errors.New("boom")
	v := New(1)
	err := v.Run(func() {
		p := NewPromise[int](v)
		v.Go(func() {
			v.Sleep(time.Millisecond)
			p.Reject(boom)
		})
		if _, err := p.Await(); !errors.Is(err, boom) {
			t.Errorf("Await err = %v, want boom", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestPromiseAwaitTimeout(t *testing.T) {
	v := New(1)
	err := v.Run(func() {
		p := NewPromise[int](v)
		start := v.Now()
		if _, err := p.AwaitTimeout(20 * time.Millisecond); !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
		if d := v.Now() - start; d != 20*time.Millisecond {
			t.Errorf("timeout took %v, want 20ms", d)
		}
		// A late resolve must still be awaitable.
		p.Resolve(3)
		if got, err := p.AwaitTimeout(time.Millisecond); err != nil || got != 3 {
			t.Errorf("late Await = (%d, %v), want (3, nil)", got, err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestPromiseDoubleResolveIgnored(t *testing.T) {
	v := New(1)
	err := v.Run(func() {
		p := NewPromise[int](v)
		p.Resolve(1)
		p.Resolve(2)
		p.Reject(errors.New("late"))
		got, err := p.Await()
		if err != nil || got != 1 {
			t.Errorf("Await = (%d, %v), want (1, nil)", got, err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestPromiseMultipleAwaiters(t *testing.T) {
	v := New(1)
	err := v.Run(func() {
		p := NewPromise[int](v)
		results := NewMailbox[int](v)
		for i := 0; i < 3; i++ {
			v.Go(func() {
				got, _ := p.Await()
				results.Send(got)
			})
		}
		v.Sleep(time.Millisecond)
		p.Resolve(9)
		for i := 0; i < 3; i++ {
			got, err := results.Recv()
			if err != nil || got != 9 {
				t.Errorf("awaiter %d got (%d, %v), want (9, nil)", i, got, err)
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMailboxFIFO(t *testing.T) {
	v := New(1)
	err := v.Run(func() {
		m := NewMailbox[int](v)
		for i := 0; i < 10; i++ {
			m.Send(i)
		}
		if m.Len() != 10 {
			t.Errorf("Len = %d, want 10", m.Len())
		}
		for i := 0; i < 10; i++ {
			got, err := m.Recv()
			if err != nil || got != i {
				t.Errorf("Recv = (%d, %v), want (%d, nil)", got, err, i)
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMailboxBlockingRecv(t *testing.T) {
	v := New(1)
	err := v.Run(func() {
		m := NewMailbox[string](v)
		v.Go(func() {
			v.Sleep(5 * time.Millisecond)
			m.Send("hello")
		})
		got, err := m.Recv()
		if err != nil || got != "hello" {
			t.Errorf("Recv = (%q, %v)", got, err)
		}
		if v.Now() != 5*time.Millisecond {
			t.Errorf("Recv returned at %v, want 5ms", v.Now())
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMailboxRecvTimeout(t *testing.T) {
	v := New(1)
	err := v.Run(func() {
		m := NewMailbox[int](v)
		if _, err := m.RecvTimeout(time.Millisecond); !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
		// An item arriving within the window is delivered.
		v.Go(func() {
			v.Sleep(time.Millisecond)
			m.Send(1)
		})
		got, err := m.RecvTimeout(10 * time.Millisecond)
		if err != nil || got != 1 {
			t.Errorf("RecvTimeout = (%d, %v), want (1, nil)", got, err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMailboxClose(t *testing.T) {
	v := New(1)
	err := v.Run(func() {
		m := NewMailbox[int](v)
		m.Send(1)
		m.Close()
		m.Send(2) // dropped
		if got, err := m.Recv(); err != nil || got != 1 {
			t.Errorf("Recv = (%d, %v), want (1, nil)", got, err)
		}
		if _, err := m.Recv(); !errors.Is(err, ErrClosed) {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMailboxCloseWakesBlockedReceiver(t *testing.T) {
	v := New(1)
	err := v.Run(func() {
		m := NewMailbox[int](v)
		done := NewPromise[error](v)
		v.Go(func() {
			_, err := m.Recv()
			done.Resolve(err)
		})
		v.Sleep(time.Millisecond)
		m.Close()
		got, _ := done.Await()
		if !errors.Is(got, ErrClosed) {
			t.Errorf("blocked Recv err = %v, want ErrClosed", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMailboxTryRecv(t *testing.T) {
	v := New(1)
	err := v.Run(func() {
		m := NewMailbox[int](v)
		if _, ok := m.TryRecv(); ok {
			t.Error("TryRecv on empty = ok")
		}
		m.Send(4)
		got, ok := m.TryRecv()
		if !ok || got != 4 {
			t.Errorf("TryRecv = (%d, %v), want (4, true)", got, ok)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMailboxMultipleReceiversNoItemLoss(t *testing.T) {
	v := New(1)
	err := v.Run(func() {
		m := NewMailbox[int](v)
		out := NewMailbox[int](v)
		for i := 0; i < 4; i++ {
			v.Go(func() {
				for {
					got, err := m.Recv()
					if err != nil {
						return
					}
					out.Send(got)
				}
			})
		}
		for i := 0; i < 100; i++ {
			m.Send(i)
		}
		seen := make(map[int]bool, 100)
		for i := 0; i < 100; i++ {
			got, err := out.Recv()
			if err != nil {
				t.Fatalf("out.Recv: %v", err)
			}
			if seen[got] {
				t.Fatalf("item %d delivered twice", got)
			}
			seen[got] = true
		}
		m.Close()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestVirtualShuffleStillCompletes(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		v := New(seed)
		v.SetScheduleShuffle(true)
		sum := 0
		err := v.Run(func() {
			m := NewMailbox[int](v)
			for i := 1; i <= 20; i++ {
				i := i
				v.Go(func() { m.Send(i) })
			}
			for i := 0; i < 20; i++ {
				x, err := m.Recv()
				if err != nil {
					t.Errorf("Recv: %v", err)
					return
				}
				sum += x
			}
		})
		if err != nil {
			t.Fatalf("seed %d: Run: %v", seed, err)
		}
		if sum != 210 {
			t.Fatalf("seed %d: sum = %d, want 210", seed, sum)
		}
	}
}

func TestVirtualRunTwiceFails(t *testing.T) {
	v := New(1)
	if err := v.Run(func() {}); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	if err := v.Run(func() {}); err == nil {
		t.Fatal("second Run succeeded, want error")
	}
}

func TestVirtualAbandonedTasksUnwound(t *testing.T) {
	v := New(1)
	err := v.Run(func() {
		for i := 0; i < 10; i++ {
			v.Go(func() {
				v.Sleep(time.Hour) // never completes before root exits
			})
		}
		v.Sleep(time.Millisecond)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(v.live) != 0 {
		t.Fatalf("%d tasks leaked after Run", len(v.live))
	}
}

func TestVirtualRandDeterministic(t *testing.T) {
	draw := func(seed int64) []int {
		v := New(seed)
		var out []int
		if err := v.Run(func() {
			for i := 0; i < 5; i++ {
				out = append(out, v.Rand().Intn(1000))
			}
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rand sequences diverge: %v vs %v", a, b)
		}
	}
}

func TestRealRuntimeBasics(t *testing.T) {
	r := NewReal(1)
	start := r.Now()
	r.Sleep(5 * time.Millisecond)
	if r.Now()-start < 5*time.Millisecond {
		t.Fatal("real Sleep returned early")
	}

	p := NewPromise[int](r)
	r.Go(func() {
		time.Sleep(2 * time.Millisecond)
		p.Resolve(11)
	})
	got, err := p.Await()
	if err != nil || got != 11 {
		t.Fatalf("Await = (%d, %v), want (11, nil)", got, err)
	}
}

func TestRealPromiseTimeout(t *testing.T) {
	r := NewReal(1)
	p := NewPromise[int](r)
	if _, err := p.AwaitTimeout(2 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestRealMailboxConcurrent(t *testing.T) {
	r := NewReal(1)
	m := NewMailbox[int](r)
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				m.Send(i*10 + j)
			}
		}()
	}
	wg.Wait()
	var got []int
	for i := 0; i < 100; i++ {
		x, err := m.RecvTimeout(time.Second)
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		got = append(got, x)
	}
	sort.Ints(got)
	for i, x := range got {
		if x != i {
			t.Fatalf("missing item: got[%d] = %d", i, x)
		}
	}
}

func TestRealMailboxRecvTimeout(t *testing.T) {
	r := NewReal(1)
	m := NewMailbox[int](r)
	if _, err := m.RecvTimeout(2 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	m.Close()
	if _, err := m.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestRealAfterAndStop(t *testing.T) {
	r := NewReal(1)
	fired := make(chan struct{}, 1)
	r.After(time.Millisecond, func() { fired <- struct{}{} })
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("After never fired")
	}
	tm2 := r.After(time.Hour, func() { t.Error("should not fire") })
	if !tm2.Stop() {
		t.Fatal("Stop = false on pending timer")
	}
}

func TestTimerStopNil(t *testing.T) {
	var tm *Timer
	if tm.Stop() {
		t.Fatal("nil Timer Stop = true")
	}
}
