package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// ErrDeadlineExceeded is returned by Virtual.Run when virtual time reaches
// the deadline configured with SetDeadline before the root task finishes.
var ErrDeadlineExceeded = errors.New("sim: virtual-time deadline exceeded")

// poison is the panic value used to unwind abandoned tasks when Run exits.
type poison struct{}

// taskState tracks where a virtual task is in its lifecycle.
type taskState int

const (
	stateReady taskState = iota + 1
	stateRunning
	stateBlocked
	stateDone
)

// vtask is one cooperatively scheduled task of a Virtual runtime.
type vtask struct {
	v        *Virtual
	resume   chan struct{}
	state    taskState
	gen      uint64 // bumped on every park; stale wakeups are ignored
	poisoned bool
	local    any // task-local value (see Runtime.TaskLocal)
}

// event is a pending timer entry.
type event struct {
	at        time.Duration
	seq       uint64
	fn        func() // spawn-style event: runs as a new task
	wake      *vtask // wake-style event: unparks wake if gen still matches
	gen       uint64
	cancelled bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Virtual is the deterministic discrete-event runtime. All tasks execute one
// at a time on dedicated goroutines, handing control back to the scheduler
// whenever they block; when no task is runnable the clock advances to the
// next timer. Create one with New and drive it with Run.
type Virtual struct {
	now      time.Duration
	seq      uint64
	ready    []*vtask
	timers   eventHeap
	cur      *vtask
	yield    chan struct{}
	rng      *rand.Rand
	root     *vtask
	rootDone bool
	live     map[*vtask]struct{}
	taskErr  any
	deadline time.Duration
	shuffle  bool
}

var _ Runtime = (*Virtual)(nil)

// New returns a virtual runtime whose random source is seeded with seed.
// The same seed yields the same schedule.
func New(seed int64) *Virtual {
	return &Virtual{
		yield: make(chan struct{}),
		rng:   rand.New(rand.NewSource(seed)),
		live:  make(map[*vtask]struct{}),
	}
}

// SetDeadline makes Run fail with ErrDeadlineExceeded if virtual time would
// advance past d. Zero disables the deadline.
func (v *Virtual) SetDeadline(d time.Duration) { v.deadline = d }

// SetScheduleShuffle toggles randomized selection among runnable tasks.
// The default (false) is FIFO order; enabling it explores alternative
// interleavings while remaining reproducible for a given seed.
func (v *Virtual) SetScheduleShuffle(on bool) { v.shuffle = on }

// Run executes fn as the root task and drives the simulation until the root
// returns, a deadline or deadlock is hit, or a task panics (the panic is
// re-raised on the caller's goroutine). Any tasks still alive when the root
// finishes are unwound, so Run does not leak goroutines.
func (v *Virtual) Run(fn func()) error {
	if v.root != nil {
		return errors.New("sim: Run called twice on the same Virtual")
	}
	v.root = v.spawn(fn)
	v.ready = append(v.ready, v.root)

	var err error
loop:
	for {
		if v.taskErr != nil {
			break
		}
		if len(v.ready) > 0 {
			i := 0
			if v.shuffle && len(v.ready) > 1 {
				i = v.rng.Intn(len(v.ready))
			}
			t := v.ready[i]
			v.ready = append(v.ready[:i], v.ready[i+1:]...)
			v.step(t)
			if v.rootDone {
				break
			}
			continue
		}
		for len(v.timers) > 0 {
			e := heap.Pop(&v.timers).(*event)
			if e.cancelled {
				continue
			}
			if v.deadline > 0 && e.at > v.deadline {
				err = ErrDeadlineExceeded
				break loop
			}
			if e.at > v.now {
				v.now = e.at
			}
			v.fire(e)
			continue loop
		}
		if !v.rootDone {
			err = ErrDeadlock
		}
		break
	}

	v.unwind()
	if v.taskErr != nil {
		panic(v.taskErr)
	}
	return err
}

// Now implements Runtime.
func (v *Virtual) Now() time.Duration { return v.now }

// Go implements Runtime.
func (v *Virtual) Go(fn func()) {
	t := v.spawn(fn)
	if v.cur != nil {
		t.local = v.cur.local // children inherit the spawner's task-local
	}
	t.state = stateReady
	v.ready = append(v.ready, t)
}

// Sleep implements Runtime.
func (v *Virtual) Sleep(d time.Duration) {
	t, gen := v.prepare()
	v.wakeAt(v.now+d, t, gen)
	v.park(t)
}

// After implements Runtime.
func (v *Virtual) After(d time.Duration, fn func()) *Timer {
	e := &event{at: v.now + d, seq: v.nextSeq(), fn: fn}
	heap.Push(&v.timers, e)
	return &Timer{stop: func() bool {
		if e.cancelled || e.fn == nil {
			return false
		}
		e.cancelled = true
		return true
	}}
}

// Rand implements Runtime.
func (v *Virtual) Rand() *rand.Rand { return v.rng }

// TaskLocal implements Runtime. Tasks run one at a time, so reading the
// current task's slot needs no synchronization.
func (v *Virtual) TaskLocal() any {
	if v.cur == nil {
		return nil
	}
	return v.cur.local
}

// SetTaskLocal implements Runtime.
func (v *Virtual) SetTaskLocal(val any) {
	if v.cur != nil {
		v.cur.local = val
	}
}

func (v *Virtual) isRuntime() {}

// spawn creates a task goroutine parked until its first resume.
func (v *Virtual) spawn(fn func()) *vtask {
	t := &vtask{v: v, resume: make(chan struct{}), state: stateReady}
	v.live[t] = struct{}{}
	go func() {
		defer func() {
			r := recover()
			if r != nil {
				if _, ok := r.(poison); !ok && v.taskErr == nil {
					v.taskErr = r
				}
			}
			t.state = stateDone
			delete(v.live, t)
			if t == v.root {
				v.rootDone = true
			}
			v.yield <- struct{}{}
		}()
		<-t.resume
		if t.poisoned {
			panic(poison{})
		}
		fn()
	}()
	return t
}

// step hands the baton to t and waits for it to block or finish.
func (v *Virtual) step(t *vtask) {
	t.state = stateRunning
	v.cur = t
	t.resume <- struct{}{}
	<-v.yield
	v.cur = nil
}

// fire processes a due timer entry on the scheduler goroutine.
func (v *Virtual) fire(e *event) {
	if e.fn != nil {
		v.Go(e.fn)
		return
	}
	v.unpark(e.wake, e.gen)
}

// prepare readies the current task for parking and returns its wake token.
// Waiter registrations (mailbox lists, timers) must capture the returned
// generation so stale wakeups are discarded.
func (v *Virtual) prepare() (*vtask, uint64) {
	t := v.cur
	if t == nil {
		panic("sim: blocking operation outside a sim task")
	}
	t.gen++
	return t, t.gen
}

// park blocks the prepared task until something unparks it.
func (v *Virtual) park(t *vtask) {
	t.state = stateBlocked
	v.yield <- struct{}{}
	<-t.resume
	if t.poisoned {
		panic(poison{})
	}
	t.state = stateRunning
}

// unpark makes t runnable again if it is still parked on generation gen.
func (v *Virtual) unpark(t *vtask, gen uint64) {
	if t == nil || t.state != stateBlocked || t.gen != gen {
		return
	}
	t.state = stateReady
	v.ready = append(v.ready, t)
}

// wakeAt schedules an unpark of (t, gen) at time at.
func (v *Virtual) wakeAt(at time.Duration, t *vtask, gen uint64) {
	heap.Push(&v.timers, &event{at: at, seq: v.nextSeq(), wake: t, gen: gen})
}

func (v *Virtual) nextSeq() uint64 {
	v.seq++
	return v.seq
}

// unwind poisons every remaining task so their goroutines exit.
func (v *Virtual) unwind() {
	for len(v.live) > 0 {
		var t *vtask
		for cand := range v.live {
			t = cand
			break
		}
		t.poisoned = true
		t.resume <- struct{}{}
		<-v.yield
	}
}

// String describes the runtime state, useful in test failure messages.
func (v *Virtual) String() string {
	return fmt.Sprintf("sim.Virtual{now: %v, ready: %d, timers: %d, live: %d}",
		v.now, len(v.ready), len(v.timers), len(v.live))
}
