// Package sim provides the execution substrate for every protocol in this
// repository: a Runtime abstraction over time, task spawning and blocking
// synchronization, with two interchangeable implementations.
//
// The virtual runtime (New) is a deterministic, cooperatively scheduled
// discrete-event simulator. Tasks run one at a time; when every task is
// blocked, the clock jumps to the next timer. A full "minute" of simulated
// WAN traffic executes in milliseconds of wall time, and a given seed always
// produces the same schedule, which makes distributed-systems tests
// reproducible.
//
// The real runtime (NewReal) maps the same operations onto goroutines and
// the wall clock, so protocol code written against Runtime also runs live
// (used by the examples and the musicd REST daemon).
package sim

import (
	"errors"
	"math/rand"
	"time"
)

// Runtime is the clock/scheduler facade protocol code is written against.
//
// Implementations are provided by New (virtual time) and NewReal (wall
// clock); the unexported method keeps the set closed so the synchronization
// primitives in this package can special-case each implementation.
type Runtime interface {
	// Now returns the current time as an offset from the runtime's start.
	Now() time.Duration
	// Sleep blocks the calling task for d.
	Sleep(d time.Duration)
	// Go spawns fn as a new task.
	Go(fn func())
	// After schedules fn to run as a new task after d. The returned Timer
	// can cancel it before it fires.
	After(d time.Duration, fn func()) *Timer
	// Rand returns the runtime's deterministic random source. It must only
	// be used from within tasks.
	Rand() *rand.Rand
	// TaskLocal returns the calling task's local value (nil when unset or
	// when called from outside a task). Tasks spawned with Go inherit the
	// spawner's value; timer callbacks (After) start with none. The local is
	// the propagation channel for cross-cutting per-task state such as the
	// observability span context (internal/obs).
	TaskLocal() any
	// SetTaskLocal replaces the calling task's local value; nil clears it.
	SetTaskLocal(v any)

	isRuntime()
}

// ErrTimeout is returned by AwaitTimeout and RecvTimeout when the deadline
// expires first.
var ErrTimeout = errors.New("sim: timeout")

// ErrDeadlock is returned by Run when no task can make progress and no
// timers remain while the root task has not finished.
var ErrDeadlock = errors.New("sim: deadlock: all tasks blocked with no pending timers")

// Timer is a handle to a pending After callback.
type Timer struct {
	stop func() bool
}

// Stop cancels the timer. It reports whether the timer was still pending.
// Stop on a nil Timer is a no-op.
func (t *Timer) Stop() bool {
	if t == nil || t.stop == nil {
		return false
	}
	return t.stop()
}
