// Package conformance pins the behavioral contract every transport.Transport
// implementation must honor, as one reusable test suite. The simnet and
// nettrans test packages each adapt their backend to the Cluster interface
// and invoke Run; protocol code above the interface then cannot observe
// which backend it is on.
//
// The contract exercised here:
//
//   - Call round-trips a registered payload, and both request and reply are
//     codec copies — a handler mutating its request cannot reach the
//     caller's memory, exactly as across a process boundary.
//   - An error returned by a handler surfaces as *transport.RemoteError,
//     and registered sentinels survive errors.Is through it.
//   - Calling a service nobody registered yields a RemoteError wrapping
//     transport.ErrNoHandler.
//   - A handler that outlives the call's timeout yields transport.ErrTimeout.
//   - Multicast returns once `need` targets succeeded and reports per-target
//     results.
//   - Send delivers one-way, best effort, without disturbing the caller.
//   - A connection reset racing an in-flight call surfaces as ErrTimeout —
//     the retryable taxonomy — and the next call transparently reconnects
//     (backends expose the reset through the optional Disruptor interface).
package conformance

import (
	"bytes"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// Msg is the suite's payload; its codec id lives in the 900–999 test range.
type Msg struct {
	Tag  string
	Body []byte
}

// ErrBusy is the suite's application-level sentinel; handlers return it and
// callers must recover it via errors.Is even across a process boundary.
var ErrBusy = errors.New("conformance: busy")

func init() {
	wire.Register(910, "conformance.Msg",
		func(e *wire.Encoder, v Msg) {
			e.String(v.Tag)
			e.RawBytes(v.Body)
		},
		func(d *wire.Decoder) Msg {
			return Msg{Tag: d.String(), Body: d.RawBytes()}
		})
	wire.RegisterError(911, ErrBusy)
}

// Cluster adapts one transport backend to the suite. Implementations must
// provide at least three nodes with IDs 0, 1 and 2; the suite calls from
// node 0.
type Cluster interface {
	// Transport returns the transport through which the given node both
	// registers handlers and issues calls. A shared-fabric backend (simnet)
	// returns the same value for every node; a per-process backend
	// (nettrans) returns that node's own endpoint.
	Transport(node transport.NodeID) transport.Transport
	// Run executes the test body in the backend's execution context — a
	// virtual-runtime backend runs fn inside its scheduler, a real-time
	// backend just calls it. Handlers are registered before Run.
	Run(t *testing.T, fn func())
	// Close releases the cluster.
	Close()
}

// Disruptor is the optional fault hook a backend's cluster adapter may
// implement: Disrupt severs the live network path between two nodes the way
// a mid-call TCP reset does — in-flight exchanges die, and connectivity
// restores on its own afterwards (a killed connection redials on the next
// call; a black-holed simulated path heals after the in-flight window).
// Backends that implement it get the ResetInFlight case.
type Disruptor interface {
	Disrupt(from, to transport.NodeID)
}

// Run executes the full conformance suite, building a fresh cluster per
// subtest.
func Run(t *testing.T, mk func(t *testing.T) Cluster) {
	t.Run("CallEchoIsolated", func(t *testing.T) { testCallEchoIsolated(t, mk(t)) })
	t.Run("RemoteErrorSentinel", func(t *testing.T) { testRemoteErrorSentinel(t, mk(t)) })
	t.Run("NoHandler", func(t *testing.T) { testNoHandler(t, mk(t)) })
	t.Run("Timeout", func(t *testing.T) { testTimeout(t, mk(t)) })
	t.Run("MulticastQuorum", func(t *testing.T) { testMulticastQuorum(t, mk(t)) })
	t.Run("MulticastStragglerDrain", func(t *testing.T) { testMulticastStragglerDrain(t, mk(t)) })
	t.Run("SendOneWay", func(t *testing.T) { testSendOneWay(t, mk(t)) })
	t.Run("ResetInFlight", func(t *testing.T) { testResetInFlight(t, mk(t)) })
}

// testResetInFlight severs the network path while a call is in flight: the
// caller must see the uniform retryable failure (ErrTimeout, never a raw
// socket error), and the very next calls must transparently reconnect.
func testResetInFlight(t *testing.T, c Cluster) {
	defer c.Close()
	d, ok := c.(Disruptor)
	if !ok {
		t.Skip("backend adapter implements no Disruptor")
	}
	slow := c.Transport(1)
	slow.Handle(1, "conf.slowecho", func(from transport.NodeID, req any) (any, error) {
		slow.Runtime().Sleep(400 * time.Millisecond)
		return req, nil
	})
	c.Run(t, func() {
		rt := c.Transport(0).Runtime()
		rt.Go(func() {
			rt.Sleep(100 * time.Millisecond)
			d.Disrupt(0, 1)
		})
		_, err := c.Transport(0).CallTimeout(0, 1, "conf.slowecho", Msg{Tag: "doomed"}, 800*time.Millisecond)
		if err == nil {
			t.Error("in-flight call survived a connection reset")
			return
		}
		if !errors.Is(err, transport.ErrTimeout) {
			t.Errorf("reset surfaced as %v, want the retryable ErrTimeout", err)
		}
		var recovered bool
		for i := 0; i < 50 && !recovered; i++ {
			resp, err := c.Transport(0).CallTimeout(0, 1, "conf.slowecho", Msg{Tag: "again"}, 2*time.Second)
			if err == nil {
				if got := resp.(Msg).Tag; got != "again" {
					t.Errorf("post-reset reply = %q", got)
				}
				recovered = true
				break
			}
			rt.Sleep(100 * time.Millisecond)
		}
		if !recovered {
			t.Error("calls never reconnected after the reset")
		}
	})
}

func testCallEchoIsolated(t *testing.T, c Cluster) {
	defer c.Close()
	sent := []byte{1, 2, 3}
	var handlerBody atomic.Pointer[[]byte]
	c.Transport(1).Handle(1, "conf.echo", func(from transport.NodeID, req any) (any, error) {
		m := req.(Msg)
		m.Body[0] = 99 // must not corrupt the sender's slice
		handlerBody.Store(&m.Body)
		return Msg{Tag: "re:" + m.Tag, Body: m.Body}, nil
	})
	c.Run(t, func() {
		resp, err := c.Transport(0).Call(0, 1, "conf.echo", Msg{Tag: "hi", Body: sent})
		if err != nil {
			t.Errorf("Call: %v", err)
			return
		}
		got := resp.(Msg)
		if got.Tag != "re:hi" || !bytes.Equal(got.Body, []byte{99, 2, 3}) {
			t.Errorf("reply = %+v", got)
		}
		if sent[0] != 1 {
			t.Errorf("handler mutation reached the caller's slice: %v", sent)
		}
		got.Body[1] = 77 // nor may the caller reach the handler's copy
		if hb := handlerBody.Load(); hb != nil && (*hb)[1] != 2 {
			t.Errorf("caller mutation reached the handler's slice: %v", *hb)
		}
	})
}

func testRemoteErrorSentinel(t *testing.T, c Cluster) {
	defer c.Close()
	c.Transport(1).Handle(1, "conf.busy", func(from transport.NodeID, req any) (any, error) {
		return nil, ErrBusy
	})
	c.Run(t, func() {
		_, err := c.Transport(0).Call(0, 1, "conf.busy", Msg{Tag: "q"})
		var re *transport.RemoteError
		if !errors.As(err, &re) {
			t.Errorf("err = %v, want *transport.RemoteError", err)
		}
		if !errors.Is(err, ErrBusy) {
			t.Errorf("err = %v, want errors.Is(err, ErrBusy)", err)
		}
		if errors.Is(err, transport.ErrTimeout) {
			t.Errorf("application error %v must not look like a timeout", err)
		}
	})
}

func testNoHandler(t *testing.T, c Cluster) {
	defer c.Close()
	c.Run(t, func() {
		_, err := c.Transport(0).Call(0, 1, "conf.nobody-home", Msg{Tag: "q"})
		var re *transport.RemoteError
		if !errors.As(err, &re) || !errors.Is(err, transport.ErrNoHandler) {
			t.Errorf("err = %v, want RemoteError wrapping ErrNoHandler", err)
		}
	})
}

func testTimeout(t *testing.T, c Cluster) {
	defer c.Close()
	slow := c.Transport(2)
	slow.Handle(2, "conf.slow", func(from transport.NodeID, req any) (any, error) {
		slow.Runtime().Sleep(500 * time.Millisecond)
		return Msg{Tag: "late"}, nil
	})
	c.Run(t, func() {
		_, err := c.Transport(0).CallTimeout(0, 2, "conf.slow", Msg{Tag: "q"}, 50*time.Millisecond)
		if !errors.Is(err, transport.ErrTimeout) {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
	})
}

func testMulticastQuorum(t *testing.T, c Cluster) {
	defer c.Close()
	var served atomic.Int32
	for _, id := range []transport.NodeID{0, 1, 2} {
		id := id
		c.Transport(id).Handle(id, "conf.vote", func(from transport.NodeID, req any) (any, error) {
			served.Add(1)
			return Msg{Tag: "ack"}, nil
		})
	}
	c.Run(t, func() {
		results := c.Transport(0).Multicast(0, []transport.NodeID{0, 1, 2}, "conf.vote", Msg{Tag: "q"}, 2, 2*time.Second)
		ok := transport.Successes(results)
		if len(ok) < 2 {
			t.Errorf("successes = %d of %d results, want ≥2", len(ok), len(results))
		}
		for _, r := range ok {
			if r.Resp.(Msg).Tag != "ack" {
				t.Errorf("reply from n%d = %+v", r.From, r.Resp)
			}
		}
		seen := map[transport.NodeID]bool{}
		for _, r := range results {
			if seen[r.From] {
				t.Errorf("duplicate result from n%d", r.From)
			}
			seen[r.From] = true
		}
	})
}

// testMulticastStragglerDrain pins the cleanup contract of a quorum-early
// return: when Multicast comes back with `need` successes while a slow
// target is still working, whatever machinery was waiting on the straggler
// must drain on its own once that target answers — no goroutine parked
// forever on a result channel nobody reads (whether the transport fans out
// with per-target goroutines or demultiplexes replies onto the caller),
// and no timeout timer left running for the rest of the window.
func testMulticastStragglerDrain(t *testing.T, c Cluster) {
	defer c.Close()
	const slowFor = 700 * time.Millisecond
	var slowDone atomic.Bool
	for _, id := range []transport.NodeID{0, 1, 2} {
		id := id
		c.Transport(id).Handle(id, "conf.warm", func(from transport.NodeID, req any) (any, error) {
			return Msg{Tag: "ack"}, nil
		})
		if id != 2 {
			c.Transport(id).Handle(id, "conf.drain", func(from transport.NodeID, req any) (any, error) {
				return Msg{Tag: "ack"}, nil
			})
		}
	}
	slow := c.Transport(2)
	slow.Handle(2, "conf.drain", func(from transport.NodeID, req any) (any, error) {
		slow.Runtime().Sleep(slowFor)
		slowDone.Store(true)
		return Msg{Tag: "ack"}, nil
	})
	c.Run(t, func() {
		rt := c.Transport(0).Runtime()
		// Warm every path first (connections, per-node workers, lazy tracer
		// state) so the goroutine baseline below reflects steady state, not a
		// cold cluster.
		warm := c.Transport(0).Multicast(0, []transport.NodeID{0, 1, 2}, "conf.warm", Msg{Tag: "w"}, 0, 5*time.Second)
		if got := len(transport.Successes(warm)); got != 3 {
			t.Errorf("warm-up successes = %d, want 3", got)
			return
		}
		baseline := runtime.NumGoroutine()
		start := rt.Now()
		results := c.Transport(0).Multicast(0, []transport.NodeID{0, 1, 2}, "conf.drain", Msg{Tag: "q"}, 2, 5*time.Second)
		if got := len(transport.Successes(results)); got < 2 {
			t.Errorf("successes = %d, want ≥2", got)
			return
		}
		if elapsed := rt.Now() - start; elapsed >= slowFor/2 {
			t.Errorf("quorum return took %v, want well under the %v straggler", elapsed, slowFor)
		}
		// The straggler is still inside its call. Wait out its handler, then
		// require the goroutine count to settle back: its result must land in
		// a buffer (or a closed mailbox) rather than block a goroutine, and
		// the multicast window's timer must not still be ticking toward 5s.
		for i := 0; i < 200 && !slowDone.Load(); i++ {
			rt.Sleep(10 * time.Millisecond)
		}
		if !slowDone.Load() {
			t.Error("straggler handler never completed")
			return
		}
		settled := false
		for i := 0; i < 200; i++ {
			if runtime.NumGoroutine() <= baseline+2 {
				settled = true
				break
			}
			rt.Sleep(10 * time.Millisecond)
		}
		if !settled {
			t.Errorf("goroutines never drained after quorum-early multicast: %d live, baseline %d",
				runtime.NumGoroutine(), baseline)
		}
	})
}

func testSendOneWay(t *testing.T, c Cluster) {
	defer c.Close()
	var got atomic.Int32
	c.Transport(1).Handle(1, "conf.cast", func(from transport.NodeID, req any) (any, error) {
		if req.(Msg).Tag == "fire" {
			got.Add(1)
		}
		return nil, nil
	})
	c.Run(t, func() {
		tr := c.Transport(0)
		tr.Send(0, 1, "conf.cast", Msg{Tag: "fire"})
		rt := tr.Runtime()
		for i := 0; i < 200 && got.Load() == 0; i++ {
			rt.Sleep(10 * time.Millisecond)
		}
		if got.Load() != 1 {
			t.Errorf("one-way delivered %d times, want 1", got.Load())
		}
	})
}
