// Package transport defines the message plane every protocol in this
// repository is written against: an addressed RPC fabric over which nodes
// register service handlers and issue calls, one-way sends, and quorum
// multicasts.
//
// Two implementations exist. internal/simnet models a multi-site cluster on
// a sim.Runtime (virtual or wall clock) with WAN latencies, NIC bandwidth,
// CPU executors and fault injection; internal/nettrans carries the same
// messages over real TCP connections between processes. Protocol code in
// internal/store, internal/lockstore, internal/core and music holds a
// Transport and cannot tell the two apart — the conformance suite under
// internal/transport/conformance pins the shared behavioral contract.
//
// Payloads cross a Transport as Go values, but both implementations route
// registered message types through internal/wire: the simulated network
// marshals and unmarshals every registered payload (so tests exercise the
// real codecs and the bandwidth model charges exact encoded bytes), and the
// TCP transport has no other way to move a value between processes.
package transport

import (
	"errors"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/wire"
)

// NodeID identifies a node within a Transport. IDs are dense, site-major.
type NodeID int

// Handler processes one inbound request on a node and returns the reply.
type Handler func(from NodeID, req any) (any, error)

// RemoteError wraps an application-level error returned by a remote
// handler, distinguishing it from transport failures such as timeouts.
type RemoteError struct {
	Err error
}

func (e *RemoteError) Error() string { return "remote: " + e.Err.Error() }

// Unwrap exposes the handler's error to errors.Is / errors.As.
func (e *RemoteError) Unwrap() error { return e.Err }

// ErrTimeout is returned by Call when no reply arrives within the timeout —
// partitions, crashes, message loss, a dead TCP peer, or a down destination
// all surface the same way.
var ErrTimeout = sim.ErrTimeout

// ErrNoHandler is returned (as a RemoteError) when the destination has no
// handler registered for the service.
var ErrNoHandler = errors.New("transport: no handler for service")

func init() {
	// Keep the no-handler sentinel recognizable across a process boundary.
	wire.RegisterError(1, ErrNoHandler)
}

// CallResult is one target's outcome in a Multicast.
type CallResult struct {
	From NodeID // the target that produced this result
	Resp any
	Err  error
}

// Successes filters a Multicast result set down to successful replies.
func Successes(results []CallResult) []CallResult {
	var ok []CallResult
	for _, r := range results {
		if r.Err == nil {
			ok = append(ok, r)
		}
	}
	return ok
}

// Transport is the message plane protocol code talks through.
//
// The methods split into three groups: topology (Nodes, SiteOf, NodesInSite,
// RTT), node services (Handle, HandleWithCost, OnRestart, Work), and
// messaging (Call, CallTimeout, Send, Multicast). A transport also carries
// the runtime its tasks are scheduled on and the shared observability sink.
type Transport interface {
	// Runtime returns the clock/scheduler the transport's tasks run on.
	Runtime() sim.Runtime
	// Obs returns the observability sink (nil when disabled).
	Obs() *obs.Obs
	// Tracer returns the shared tracer; it is nil-safe to call through a
	// disabled sink.
	Tracer() *obs.Tracer

	// Nodes returns all node IDs, local and remote.
	Nodes() []NodeID
	// SiteOf returns the site name hosting id.
	SiteOf(id NodeID) string
	// NodesInSite returns the IDs of all nodes in the named site.
	NodesInSite(site string) []NodeID
	// RTT returns the modeled (or configured) round-trip time between two
	// sites; implementations without latency knowledge return 0.
	RTT(a, b string) time.Duration
	// RPCTimeout returns the default Call timeout.
	RPCTimeout() time.Duration

	// Handle registers h for service svc on a node this transport hosts,
	// with zero modeled CPU cost.
	Handle(node NodeID, svc string, h Handler)
	// HandleWithCost registers h for svc on node; each request consumes
	// base + perKB·(size/1KiB) of modeled CPU before the handler runs.
	// Implementations backed by real CPUs ignore the cost.
	HandleWithCost(node NodeID, svc string, h Handler, base, perKB time.Duration)
	// OnRestart registers a hook run when node restarts after a crash;
	// implementations without crash modeling never invoke it.
	OnRestart(node NodeID, fn func())
	// Work charges cost of modeled CPU time against node, blocking the
	// caller until it is burned. A no-op on real-CPU transports.
	Work(node NodeID, cost time.Duration)

	// Call sends req from -> to for service svc and waits for the reply
	// using the default RPC timeout.
	Call(from, to NodeID, svc string, req any) (any, error)
	// CallTimeout is Call with an explicit timeout. A transport failure
	// (partition, loss, crash, broken connection) surfaces as ErrTimeout; an
	// error returned by the remote handler surfaces wrapped in RemoteError.
	CallTimeout(from, to NodeID, svc string, req any, timeout time.Duration) (any, error)
	// Send delivers req from -> to without waiting for a reply (best
	// effort).
	Send(from, to NodeID, svc string, req any)
	// Multicast sends req to every target in parallel and collects replies
	// until `need` of them have succeeded, all targets have answered or
	// failed, or the timeout elapses — whichever comes first. It returns the
	// results gathered so far; callers count successes themselves.
	Multicast(from NodeID, targets []NodeID, svc string, req any, need int, timeout time.Duration) []CallResult

	// Close releases transport resources (listeners, connections, worker
	// pools). Further calls fail or time out.
	Close()
}

// PeerEditor is the optional capability of transports whose peer set can
// change while the process runs — a membership join must make the new site's
// nodes dialable, and a retire should drop their connections. The TCP plane
// (internal/nettrans) implements it; the simulated plane does not (its
// universe is fixed at construction — spares are provisioned up front and
// membership decides who *serves*, not who exists). Callers type-assert:
//
//	if pe, ok := tr.(transport.PeerEditor); ok { pe.AddPeer(id, site, addr) }
type PeerEditor interface {
	// AddPeer makes id dialable at addr within site. Re-adding an existing
	// id updates its address (the replacement-process case) and drops any
	// connection to the old one.
	AddPeer(id NodeID, site, addr string) error
	// RemovePeer forgets id and closes its connections. Removing the
	// process's own node or an unknown id is an error.
	RemovePeer(id NodeID) error
}

// AddrReporter is the optional capability of transports that know their
// peers' dialable addresses (the TCP plane). Membership changes proposed
// through such a transport carry each arriving node's address, so every
// process applying the new epoch can AddPeer nodes it has never dialed.
type AddrReporter interface {
	// AddrOf returns id's listen address, or "" for an unknown peer.
	AddrOf(id NodeID) string
}
