#!/usr/bin/env bash
# Tier-1 gate: run before every commit/PR. Fails on formatting drift, vet
# findings, build or test failures, and data races in the packages that run
# on real goroutines (wall-clock mode) rather than the single-threaded
# virtual-time simulator.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
# -shuffle surfaces inter-test state leaks (each failure logs the shuffle
# seed for replay); every invocation carries an explicit -timeout so a hung
# test fails the gate in minutes instead of stalling it for go test's
# 10-minute default per package.
go test -shuffle=on -timeout 600s ./...
go test -race -timeout 600s ./music/ ./internal/httpapi/ ./internal/nettrans/ ./cmd/...

# Fault-injection campaign under pinned seeds: the deterministic crash /
# partition / ack-loss scenarios plus the chaos interleavings, re-run with
# a fixed seed list so a schedule regression cannot hide behind seed drift.
MUSIC_FAULT_SEEDS="1,2,3,4,5" go test ./internal/core/ -run 'TestFault|TestChaos' -count=1 -timeout 300s
# Session-layer fault edges of the critical-section fast path: forced
# release / T-expiry invalidating the holder cache, write-behind buffers
# surviving cross-site failover, pipelined flush re-drives.
MUSIC_FAULT_SEEDS="1,2,3,4,5" go test ./music/ -run 'TestSessionFault' -count=1 -timeout 300s
# Pinned-seed exploration batch: deterministic randomized fault schedules
# (crash / partition / loss / clock skew) with every history checked against
# the ECF + linearizability rules (internal/history). Same seed-pinning
# rationale as the fault campaign above.
MUSIC_EXPLORE_SEEDS="1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20" \
    go test ./internal/history/explore/ -run 'TestExplorePinnedSeeds' -count=1 -timeout 600s
# Membership-churn campaign under pinned seeds: seeded epoch-change schedules
# (join during a held section, retire of the lockholder's site, replace under
# partition) against live dynamic clusters, every history checked against the
# full ECF rule set including the epoch rules. The nightly churn job runs a
# fresh-seed batch; this pinned subset keeps the local gate deterministic.
MUSIC_MEMBER_SEEDS="1,2,3,4,5,6,7,8,9,10,11,12" \
    go test ./internal/history/explore/ -run 'TestChurnPinnedSeeds' -count=1 -timeout 600s
# Adaptive read-plane campaign under pinned seeds: the exploration schedules
# re-run with holder leases and then monitored ONE reads on, so the
# lease-order / lease-window / lease-epoch and monitor-coverage ECF rules
# are certified against real fault schedules (12 pinned seeds x both modes;
# the test also asserts both read paths actually served). The nightly
# adaptive job runs a fresh-seed batch of the same campaign.
MUSIC_EXPLORE_MODES="lease,adaptive" \
    go test ./internal/history/explore/ -run 'TestExploreModesPinnedSeeds' -count=1 -timeout 600s
# Chaosnet campaign under pinned seeds: the same ECF checkers, but over the
# REAL TCP message plane with seed-driven latency / loss / partition / reset
# faults injected into the dial path (internal/chaosnet). The regexp matches
# the single-shard campaign, the sharded one (RunSeedSharded: two processes
# per site, keys routed to their owning shard), and the mode campaign
# (lease + adaptive read planes over the same faults), so the 12 pinned
# seeds run against every deployment. The full 50-seed batch runs in CI's
# chaosnet job and nightly; this subset keeps the local gate fast without
# losing the wire-path coverage.
MUSIC_CHAOSNET_SEEDS="1,2,3,4,5,6,7,8,9,10,11,12" \
    go test ./internal/chaosnet/ -run 'TestChaosnetCampaign' -count=1 -timeout 900s

# Hot-path allocation ceilings: encoding a call frame must not allocate at
# all (pooled buffer, in-place marshal, back-patched length prefixes) and
# decoding may allocate at most once per frame (the svc string). A dropped
# pool or an intermediate payload copy fails here by name instead of hiding
# inside the package test run above.
go test ./internal/nettrans/ -run 'TestAllocCeiling' -count=1 -timeout 300s
# Store/core allocation gates from the sharding work: shard routing is
# alloc-free, critical ops allocate no more on an 8-shard plane than on an
# unsharded one, and the store's disabled-observability hot path stays under
# its pinned per-op ceilings (the span/history nil-guard regression).
go test ./internal/store/ -run 'TestAllocCeilingStoreOps|TestShardOfZeroAlloc' -count=1 -timeout 300s
go test ./internal/core/ -run 'TestShardedSingleKeyNoExtraAllocs' -count=1 -timeout 300s

# Fast-path benchmark smoke: the fastpath experiment must run end to end in
# quick mode and emit a well-formed BENCH_fastpath.json.
fastpath_json=$(mktemp)
transport_json=$(mktemp)
trap 'rm -f "$fastpath_json" "$transport_json"' EXIT
go run ./cmd/musicbench -exp fastpath -quick -quiet -json "$fastpath_json" > /dev/null
grep -q '"experiment": "fastpath"' "$fastpath_json"

# Message-plane smoke: the transport experiment deploys real TCP loopback
# clusters alongside the simulated plane and must emit BENCH_transport.json.
go run ./cmd/musicbench -exp transport -quick -quiet -json "$transport_json" > /dev/null
grep -q '"experiment": "transport"' "$transport_json"

# Soak smoke: the soak scenarios must run end to end in quick mode and emit a
# well-formed BENCH_soak.json SLO report. restarts and reconfig deploy real
# musicd OS processes: restarts must prove the SIGKILLed-and-restarted process
# caught up through the startup state-transfer pull ("caught_up": true), and
# reconfig drives join/retire/replace through POST /v1/admin/membership while
# the workload keeps running (final_epoch 4).
soak_json=$(mktemp)
trap 'rm -f "$fastpath_json" "$transport_json" "$soak_json"' EXIT
go run ./cmd/musicbench -exp soak -quick -quiet -json "$soak_json" > /dev/null
grep -q '"experiment": "soak"' "$soak_json"
grep -q '"scenario": "restarts"' "$soak_json"
grep -q '"caught_up": true' "$soak_json"
grep -q '"scenario": "reconfig"' "$soak_json"
grep -q '"final_epoch": 4' "$soak_json"

# Scale smoke: the sharded-plane campaign must run end to end in quick mode
# (shard counts 1 and 4 over the million-key uniform YCSB workload) and emit
# a well-formed BENCH_scale.json. The full sweep runs in CI's bench-gate job
# against the committed baseline.
scale_json=$(mktemp)
trap 'rm -f "$fastpath_json" "$transport_json" "$soak_json" "$scale_json"' EXIT
go run ./cmd/musicbench -exp scale -quick -quiet -json "$scale_json" > /dev/null
grep -q '"experiment": "scale"' "$scale_json"
grep -q '"shards": "4"' "$scale_json"

# Read-path smoke: the adaptive-consistency experiment must run end to end
# in quick mode and emit a well-formed BENCH_readpath.json covering all four
# read planes, with the injected-staleness config actually tripping the
# monitor ("flipped": true). The full sweep gates against the committed
# baseline in CI's bench-gate job.
readpath_json=$(mktemp)
trap 'rm -f "$fastpath_json" "$transport_json" "$soak_json" "$scale_json" "$readpath_json"' EXIT
go run ./cmd/musicbench -exp readpath -quick -quiet -json "$readpath_json" > /dev/null
grep -q '"experiment": "readpath"' "$readpath_json"
grep -q '"config": "adaptive_stale"' "$readpath_json"
grep -q '"flipped": true' "$readpath_json"

echo "check.sh: all green"
