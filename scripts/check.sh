#!/usr/bin/env bash
# Tier-1 gate: run before every commit/PR. Fails on formatting drift, vet
# findings, build or test failures, and data races in the packages that run
# on real goroutines (wall-clock mode) rather than the single-threaded
# virtual-time simulator.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./...
go test -race ./music/ ./internal/httpapi/ ./cmd/...

echo "check.sh: all green"
