#!/usr/bin/env bash
# Coverage gate for the protocol-bearing packages: fails if statement
# coverage of internal/core, internal/store, internal/history, or music
# drops below the checked-in floors (set a couple of points under the
# measured value so incidental drift passes but a dropped test file does
# not). internal/history is gated because the ECF rules and the live
# consistency monitor are the safety net everything else leans on. Writes
# the merged profile to coverage.out (first argument overrides) for the CI
# artifact upload.
set -euo pipefail
cd "$(dirname "$0")/.."

profile="${1:-coverage.out}"
log=$(mktemp)
trap 'rm -f "$log"' EXIT

# package -> floor (percent of statements)
floors="
repro/internal/core 81
repro/internal/store 88
repro/internal/history 76
repro/music 73
"

go test -coverprofile="$profile" -covermode=count \
    ./internal/core/ ./internal/store/ ./internal/history/ ./music/ > "$log" 2>&1 || {
    cat "$log" >&2
    exit 1
}

fail=0
while read -r pkg floor; do
    [ -z "$pkg" ] && continue
    pct=$(grep -E "^ok[[:space:]]+$pkg[[:space:]]" "$log" |
        grep -oE '[0-9.]+% of statements' | grep -oE '^[0-9.]+' || true)
    if [ -z "$pct" ]; then
        echo "coverage: no result for $pkg" >&2
        fail=1
        continue
    fi
    if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
        echo "coverage: $pkg at ${pct}% — below floor ${floor}%" >&2
        fail=1
    else
        echo "coverage: $pkg at ${pct}% (floor ${floor}%)"
    fi
done <<< "$floors"

exit $fail
