package main

import (
	"strings"
	"testing"
)

// TestTransfer runs the example in virtual time: 10 racing cross-site
// multi-key transfers must complete without deadlock and conserve money.
func TestTransfer(t *testing.T) {
	var out strings.Builder
	if err := run(&out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "final balances: alice=1075 bob=925 (total 2000)") {
		t.Errorf("unexpected final balances:\n%s", s)
	}
	if !strings.Contains(s, "total conserved") {
		t.Errorf("missing conservation line:\n%s", s)
	}
	if n := strings.Count(s, "moved"); n != 10 {
		t.Errorf("transfers = %d, want 10:\n%s", n, s)
	}
}
