// Transfer: multi-key critical sections (§III-A). Concurrent clients at
// different sites move funds between accounts, each transfer locking both
// accounts — acquired in lexicographic order, the paper's deadlock
// avoidance rule — so balances never tear and the total is conserved even
// with opposite-direction transfers racing.
package main

import (
	"fmt"
	"log"
	"strconv"
	"time"

	"repro/music"
)

func main() {
	c, err := music.New(music.WithProfile(music.ProfileIUs))
	if err != nil {
		log.Fatal(err)
	}
	err = c.Run(func() {
		cl := c.Client("ohio")
		for _, acct := range []string{"acct:alice", "acct:bob"} {
			if err := cl.Put(acct, []byte("1000")); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Println("opened acct:alice and acct:bob with 1000 each")

		// Opposite-direction transfers race from two sites; lexicographic
		// lock order prevents deadlock.
		done := make(chan error, 2)
		c.Go(func() { done <- transferN(c.Client("ncalifornia"), "acct:alice", "acct:bob", 10, 5) })
		c.Go(func() { done <- transferN(c.Client("oregon"), "acct:bob", "acct:alice", 25, 5) })
		deadline := c.Now() + 10*time.Minute
		for len(done) < 2 {
			if c.Now() > deadline {
				log.Fatal("transfers deadlocked")
			}
			c.Sleep(100 * time.Millisecond)
		}
		for i := 0; i < 2; i++ {
			if err := <-done; err != nil {
				log.Fatal(err)
			}
		}

		a := balance(cl, "acct:alice")
		b := balance(cl, "acct:bob")
		fmt.Printf("final balances: alice=%d bob=%d (total %d)\n", a, b, a+b)
		if a+b != 2000 {
			log.Fatalf("money not conserved: %d", a+b)
		}
		fmt.Println("total conserved across 10 racing cross-site transfers")
	})
	if err != nil {
		log.Fatal(err)
	}
}

// transferN moves amount from -> to, n times, in one critical section pair
// per transfer.
func transferN(cl *music.Client, from, to string, amount int, n int) error {
	for i := 0; i < n; i++ {
		err := cl.RunCriticalMulti([]string{from, to}, func(cs map[string]*music.CriticalSection) error {
			src, err := readBalance(cs[from])
			if err != nil {
				return err
			}
			dst, err := readBalance(cs[to])
			if err != nil {
				return err
			}
			if src < amount {
				return fmt.Errorf("insufficient funds in %s: %d < %d", from, src, amount)
			}
			if err := cs[from].Put([]byte(strconv.Itoa(src - amount))); err != nil {
				return err
			}
			return cs[to].Put([]byte(strconv.Itoa(dst + amount)))
		})
		if err != nil {
			return fmt.Errorf("transfer %s->%s: %w", from, to, err)
		}
		fmt.Printf("%s: moved %d from %s to %s\n", cl.Site(), amount, from, to)
	}
	return nil
}

func readBalance(cs *music.CriticalSection) (int, error) {
	v, err := cs.Get()
	if err != nil {
		return 0, err
	}
	if v == nil {
		return 0, nil
	}
	return strconv.Atoi(string(v))
}

func balance(cl *music.Client, acct string) int {
	v, err := cl.Get(acct)
	if err != nil {
		log.Fatal(err)
	}
	n, _ := strconv.Atoi(string(v))
	return n
}
