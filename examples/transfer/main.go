// Transfer: multi-key critical sections (§III-A). Concurrent clients at
// different sites move funds between accounts, each transfer locking both
// accounts — acquired in lexicographic order, the paper's deadlock
// avoidance rule — so balances never tear and the total is conserved even
// with opposite-direction transfers racing.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"time"

	"repro/music"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer) error {
	c, err := music.New(music.WithProfile(music.ProfileIUs))
	if err != nil {
		return err
	}
	var runErr error
	err = c.Run(func() {
		runErr = demo(c, out)
	})
	if err != nil {
		return err
	}
	return runErr
}

func demo(c *music.Cluster, out io.Writer) error {
	cl := c.Client("ohio")
	for _, acct := range []string{"acct:alice", "acct:bob"} {
		if err := cl.Put(acct, []byte("1000")); err != nil {
			return err
		}
	}
	fmt.Fprintln(out, "opened acct:alice and acct:bob with 1000 each")

	// Opposite-direction transfers race from two sites; lexicographic
	// lock order prevents deadlock.
	done := make(chan error, 2)
	c.Go(func() { done <- transferN(c.Client("ncalifornia"), out, "acct:alice", "acct:bob", 10, 5) })
	c.Go(func() { done <- transferN(c.Client("oregon"), out, "acct:bob", "acct:alice", 25, 5) })
	deadline := c.Now() + 10*time.Minute
	for len(done) < 2 {
		if c.Now() > deadline {
			return fmt.Errorf("transfers deadlocked")
		}
		c.Sleep(100 * time.Millisecond)
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			return err
		}
	}

	a, err := balance(cl, "acct:alice")
	if err != nil {
		return err
	}
	b, err := balance(cl, "acct:bob")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "final balances: alice=%d bob=%d (total %d)\n", a, b, a+b)
	if a+b != 2000 {
		return fmt.Errorf("money not conserved: %d", a+b)
	}
	fmt.Fprintln(out, "total conserved across 10 racing cross-site transfers")
	return nil
}

// transferN moves amount from -> to, n times, in one critical section pair
// per transfer.
func transferN(cl *music.Client, out io.Writer, from, to string, amount int, n int) error {
	for i := 0; i < n; i++ {
		err := cl.RunCriticalMulti([]string{from, to}, func(cs map[string]*music.CriticalSection) error {
			src, err := readBalance(cs[from])
			if err != nil {
				return err
			}
			dst, err := readBalance(cs[to])
			if err != nil {
				return err
			}
			if src < amount {
				return fmt.Errorf("insufficient funds in %s: %d < %d", from, src, amount)
			}
			if err := cs[from].Put([]byte(strconv.Itoa(src - amount))); err != nil {
				return err
			}
			return cs[to].Put([]byte(strconv.Itoa(dst + amount)))
		})
		if err != nil {
			return fmt.Errorf("transfer %s->%s: %w", from, to, err)
		}
		fmt.Fprintf(out, "%s: moved %d from %s to %s\n", cl.Site(), amount, from, to)
	}
	return nil
}

func readBalance(cs *music.CriticalSection) (int, error) {
	v, err := cs.Get()
	if err != nil {
		return 0, err
	}
	if v == nil {
		return 0, nil
	}
	return strconv.Atoi(string(v))
}

func balance(cl *music.Client, acct string) (int, error) {
	v, err := cl.Get(acct)
	if err != nil {
		return 0, err
	}
	n, _ := strconv.Atoi(string(v))
	return n, nil
}
