package main

import (
	"strings"
	"testing"
)

// TestPortal runs the example in virtual time: ownership amortizes the lock
// across updates, failover steals ownership via forcedRelease, and the
// preempted owner's stale write is rejected.
func TestPortal(t *testing.T) {
	var out strings.Builder
	if err := run(&out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "be-ohio: became owner of alice") {
		t.Errorf("first owner missing:\n%s", s)
	}
	if !strings.Contains(s, "be-ncal: became owner of alice") {
		t.Errorf("failover owner missing:\n%s", s)
	}
	if !strings.Contains(s, "alice's role after failover: admin (update #6)") {
		t.Errorf("failover update missing:\n%s", s)
	}
	if !strings.Contains(s, "stale write rejected: true") {
		t.Errorf("stale write not rejected:\n%s", s)
	}
	if !strings.Contains(s, "alice's role is still: admin (update #6)") {
		t.Errorf("state corrupted by preempted owner:\n%s", s)
	}
}
