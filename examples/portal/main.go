// Portal: the Management Portal Service of §VII-b — active replication
// with failover. Each user's role updates are processed by exactly one
// back-end replica (the user's owner), which holds a long-lived MUSIC lock
// and amortizes its cost across many single-update critical sections. When
// the owner fails, another replica forcibly releases the lock, takes
// ownership, and continues from the latest state.
package main

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/music"
)

// ownerRecord is the (userId-owner) key's value: which back end owns the
// user and under which lock reference.
type ownerRecord struct {
	Owner   string        `json:"owner"`
	LockRef music.LockRef `json:"lockRef"`
}

// backend is one Portal back-end replica.
type backend struct {
	name  string
	cl    *music.Client
	out   io.Writer
	alive bool
}

// write processes one role update at back end b (§VII-b pseudo-code): on
// first contact or after the previous owner's failure it takes ownership
// (forcedRelease + acquire + record), then performs the single criticalPut.
func (b *backend) write(userID string, role []byte) error {
	if !b.alive {
		return errors.New("backend down")
	}
	ownerKey := userID + "-owner"
	raw, err := b.cl.Get(ownerKey)
	if err != nil {
		return err
	}
	var rec ownerRecord
	if raw != nil {
		if err := json.Unmarshal(raw, &rec); err != nil {
			return err
		}
	}
	switch {
	case rec.Owner == "":
		if err := b.own(userID); err != nil { // first owner
			return err
		}
	case rec.Owner != b.name:
		// Previous owner failed: steal ownership with a forced release.
		if err := b.cl.ForcedRelease(userID, rec.LockRef); err != nil {
			return err
		}
		if err := b.own(userID); err != nil {
			return err
		}
	}

	raw, err = b.cl.Get(ownerKey)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(raw, &rec); err != nil {
		return err
	}
	return b.cl.CriticalPut(userID, rec.LockRef, role)
}

// own takes ownership of a user: acquire a fresh lock and publish the
// ownership details with a plain put (no locks needed — stale ownership
// info only costs an extra transition, §VII-b).
func (b *backend) own(userID string) error {
	ref, err := b.cl.CreateLockRef(userID)
	if err != nil {
		return err
	}
	if err := b.cl.AwaitLock(userID, ref, 0); err != nil {
		return err
	}
	raw, err := json.Marshal(ownerRecord{Owner: b.name, LockRef: ref})
	if err != nil {
		return err
	}
	fmt.Fprintf(b.out, "%s: became owner of %s (lockRef %d)\n", b.name, userID, ref)
	return b.cl.Put(userID+"-owner", raw)
}

// frontend routes a request to the user's owner, retrying at the next
// closest back end when the owner fails to respond.
func frontend(backends []*backend, userID string, role []byte) error {
	for _, b := range backends {
		if err := b.write(userID, role); err == nil {
			return nil
		}
	}
	return errors.New("all back ends failed")
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer) error {
	c, err := music.New(music.WithProfile(music.ProfileIUs))
	if err != nil {
		return err
	}
	var runErr error
	err = c.Run(func() {
		runErr = demo(c, out)
	})
	if err != nil {
		return err
	}
	return runErr
}

func demo(c *music.Cluster, out io.Writer) error {
	backends := []*backend{
		{name: "be-ohio", cl: c.Client("ohio"), out: out, alive: true},
		{name: "be-ncal", cl: c.Client("ncalifornia"), out: out, alive: true},
		{name: "be-oregon", cl: c.Client("oregon"), out: out, alive: true},
	}

	// A stream of role updates for one user: the first back end becomes
	// the owner and serves every request with a single quorum put each
	// — no per-request consensus (§VII-b's amortization).
	start := c.Now()
	for i := 1; i <= 5; i++ {
		if err := frontend(backends, "alice", roleBytes("editor", i)); err != nil {
			return err
		}
	}
	perUpdate := (c.Now() - start) / 5
	fmt.Fprintf(out, "owner path: 5 role updates, avg %v per update (no consensus per write)\n",
		perUpdate.Round(time.Millisecond))

	// The owner dies; the front end fails over, the next back end
	// steals ownership via forcedRelease, and updates continue from the
	// latest state.
	backends[0].alive = false
	fmt.Fprintln(out, "be-ohio: crashed")
	if err := frontend(backends, "alice", roleBytes("admin", 6)); err != nil {
		return err
	}

	// The latest role is visible through the new owner's lock.
	final, err := backends[1].cl.Get("alice")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "alice's role after failover: %s\n", decodeRole(final))

	// The preempted owner comes back: its old lockRef is dead, so its
	// writes can no longer corrupt the user's state (Exclusivity).
	backends[0].alive = true
	raw, _ := backends[0].cl.Get("alice-owner")
	var rec ownerRecord
	if raw != nil {
		_ = json.Unmarshal(raw, &rec)
	}
	err = backends[0].cl.CriticalPut("alice", 1 /* its old ref */, roleBytes("ghost", 0))
	fmt.Fprintf(out, "be-ohio: stale write rejected: %v\n", err != nil)
	final, err = backends[1].cl.Get("alice")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "alice's role is still: %s\n", decodeRole(final))
	return nil
}

func roleBytes(role string, seq int) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(seq))
	return append(b, role...)
}

func decodeRole(b []byte) string {
	if len(b) < 8 {
		return "?"
	}
	return fmt.Sprintf("%s (update #%d)", b[8:], binary.BigEndian.Uint64(b[:8]))
}
