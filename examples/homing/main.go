// Homing: the VNF Homing Service of §VII-a — the job-scheduler paradigm
// where worker (scheduler) replicas across sites vie for homing jobs, each
// job is processed exclusively by one worker from its latest state, and a
// worker crash mid-job hands the job to another worker with no lost
// progress. Runs deterministically on the virtual-time simulator.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"repro/music"
)

// jobState follows Fig 3(b): a homing request advances through the stages
// of the homing process until DONE.
var stages = []string{"RECEIVED", "TEMPLATE_RESOLVED", "CANDIDATES_FOUND", "CONSTRAINTS_SOLVED", "DONE"}

// job is the MUSIC value of a jobId key: dynamic execution state plus the
// static description a worker needs to resolve the request.
type job struct {
	State   string   `json:"state"`
	Desc    string   `json:"desc"`
	History []string `json:"history"` // which worker executed each stage
}

func main() {
	// T bounds a critical section: a worker silent for longer is presumed
	// failed and its lock is force-released.
	c, err := music.New(music.WithProfile(music.ProfileIUs), music.WithT(3*time.Second))
	if err != nil {
		log.Fatal(err)
	}

	err = c.Run(func() {
		api := c.Client("ohio")

		// The Client API replica receives homing requests and places them
		// in MUSIC with plain puts — no locks needed at submission (§VII-a).
		for i := 1; i <= 3; i++ {
			jobID := fmt.Sprintf("job-%02d", i)
			submit(api, jobID, fmt.Sprintf("place VNF chain #%d", i))
			fmt.Printf("client-api: submitted %s\n", jobID)
		}
		c.Sleep(time.Second) // let submissions propagate

		// Worker 1 (N. California) starts crunching but crashes after two
		// stages of its first job.
		runWorker(c, "worker-1@ncalifornia", c.Client("ncalifornia"), 2)
		fmt.Println("worker-1: crashed mid-job (processed 2 stages)")

		// The failed worker's lock expires after T; worker 2 takes over
		// every job from its latest state.
		c.Sleep(4 * time.Second)
		runWorker(c, "worker-2@oregon", c.Client("oregon"), -1)

		// The Client API reaps completed jobs with lock-free gets (§VII-a).
		keys, err := api.GetAllKeys()
		if err != nil {
			log.Fatal(err)
		}
		for _, jobID := range keys {
			raw, err := api.Get(jobID)
			if err != nil || raw == nil {
				continue
			}
			var j job
			if err := json.Unmarshal(raw, &j); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("client-api: %s state=%s history=%v\n", jobID, j.State, j.History)
			if j.State != "DONE" {
				log.Fatalf("%s not DONE", jobID)
			}
			if err := api.Remove(jobID); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Println("client-api: all jobs DONE and reaped; no stage was executed twice")
	})
	if err != nil {
		log.Fatal(err)
	}
}

func submit(cl *music.Client, jobID, desc string) {
	raw, err := json.Marshal(job{State: stages[0], Desc: desc})
	if err != nil {
		log.Fatal(err)
	}
	if err := cl.Put(jobID, raw); err != nil {
		log.Fatal(err)
	}
}

// runWorker is the worker pseudo-code of §VII-a: iterate all jobs, grab an
// incomplete one with a MUSIC lock, and advance it stage by stage with
// criticalPuts so a successor can resume from the latest state. maxStages
// limits work before a simulated crash (-1 = run to completion).
func runWorker(c *music.Cluster, name string, cl *music.Client, maxStages int) {
	budget := maxStages
	keys, err := cl.GetAllKeys()
	if err != nil {
		log.Fatal(err)
	}
	for _, jobID := range keys {
		if budget == 0 {
			return
		}
		// Unlocked peek: stale reads are fine, correctness comes from the
		// critical section below.
		raw, err := cl.Get(jobID)
		if err != nil || raw == nil {
			continue
		}
		var peek job
		if err := json.Unmarshal(raw, &peek); err != nil || peek.State == "DONE" {
			continue
		}

		ref, err := cl.CreateLockRef(jobID)
		if err != nil {
			log.Fatal(err)
		}
		if err := cl.AwaitLock(jobID, ref, 30*time.Second); err != nil {
			// Lost the race for this job: evict our reference and move on.
			_ = cl.RemoveLockRef(jobID, ref)
			continue
		}

		// executeJobInCriticalSection: read the latest state, then advance.
		for budget != 0 {
			raw, err := cl.CriticalGet(jobID, ref)
			if err != nil {
				log.Fatal(err)
			}
			var j job
			if err := json.Unmarshal(raw, &j); err != nil {
				log.Fatal(err)
			}
			if j.State == "DONE" {
				break
			}
			j.State = nextStage(j.State)
			j.History = append(j.History, fmt.Sprintf("%s:%s", j.State, name))
			out, err := json.Marshal(j)
			if err != nil {
				log.Fatal(err)
			}
			if err := cl.CriticalPut(jobID, ref, out); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%s: %s -> %s\n", name, jobID, j.State)
			if budget > 0 {
				budget--
			}
			c.Sleep(100 * time.Millisecond) // the homing computation itself
		}
		if budget == 0 {
			return // simulated crash: no release, lock left dangling
		}
		if err := cl.ReleaseLock(jobID, ref); err != nil {
			log.Fatal(err)
		}
	}
}

func nextStage(cur string) string {
	for i, s := range stages {
		if s == cur && i+1 < len(stages) {
			return stages[i+1]
		}
	}
	return "DONE"
}
