// Homing: the VNF Homing Service of §VII-a — the job-scheduler paradigm
// where worker (scheduler) replicas across sites vie for homing jobs, each
// job is processed exclusively by one worker from its latest state, and a
// worker crash mid-job hands the job to another worker with no lost
// progress. Runs deterministically on the virtual-time simulator.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/music"
)

// jobState follows Fig 3(b): a homing request advances through the stages
// of the homing process until DONE.
var stages = []string{"RECEIVED", "TEMPLATE_RESOLVED", "CANDIDATES_FOUND", "CONSTRAINTS_SOLVED", "DONE"}

// job is the MUSIC value of a jobId key: dynamic execution state plus the
// static description a worker needs to resolve the request.
type job struct {
	State   string   `json:"state"`
	Desc    string   `json:"desc"`
	History []string `json:"history"` // which worker executed each stage
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer) error {
	// T bounds a critical section: a worker silent for longer is presumed
	// failed and its lock is force-released.
	c, err := music.New(music.WithProfile(music.ProfileIUs), music.WithT(3*time.Second))
	if err != nil {
		return err
	}
	var runErr error
	err = c.Run(func() {
		runErr = demo(c, out)
	})
	if err != nil {
		return err
	}
	return runErr
}

func demo(c *music.Cluster, out io.Writer) error {
	api := c.Client("ohio")

	// The Client API replica receives homing requests and places them
	// in MUSIC with plain puts — no locks needed at submission (§VII-a).
	for i := 1; i <= 3; i++ {
		jobID := fmt.Sprintf("job-%02d", i)
		if err := submit(api, jobID, fmt.Sprintf("place VNF chain #%d", i)); err != nil {
			return err
		}
		fmt.Fprintf(out, "client-api: submitted %s\n", jobID)
	}
	c.Sleep(time.Second) // let submissions propagate

	// Worker 1 (N. California) starts crunching but crashes after two
	// stages of its first job.
	if err := runWorker(c, out, "worker-1@ncalifornia", c.Client("ncalifornia"), 2); err != nil {
		return err
	}
	fmt.Fprintln(out, "worker-1: crashed mid-job (processed 2 stages)")

	// The failed worker's lock expires after T; worker 2 takes over
	// every job from its latest state.
	c.Sleep(4 * time.Second)
	if err := runWorker(c, out, "worker-2@oregon", c.Client("oregon"), -1); err != nil {
		return err
	}

	// The Client API reaps completed jobs with lock-free gets (§VII-a).
	keys, err := api.GetAllKeys()
	if err != nil {
		return err
	}
	for _, jobID := range keys {
		raw, err := api.Get(jobID)
		if err != nil || raw == nil {
			continue
		}
		var j job
		if err := json.Unmarshal(raw, &j); err != nil {
			return err
		}
		fmt.Fprintf(out, "client-api: %s state=%s history=%v\n", jobID, j.State, j.History)
		if j.State != "DONE" {
			return fmt.Errorf("%s not DONE", jobID)
		}
		if err := api.Remove(jobID); err != nil {
			return err
		}
	}
	fmt.Fprintln(out, "client-api: all jobs DONE and reaped; no stage was executed twice")
	return nil
}

func submit(cl *music.Client, jobID, desc string) error {
	raw, err := json.Marshal(job{State: stages[0], Desc: desc})
	if err != nil {
		return err
	}
	return cl.Put(jobID, raw)
}

// runWorker is the worker pseudo-code of §VII-a: iterate all jobs, grab an
// incomplete one with a MUSIC lock, and advance it stage by stage with
// criticalPuts so a successor can resume from the latest state. maxStages
// limits work before a simulated crash (-1 = run to completion).
func runWorker(c *music.Cluster, out io.Writer, name string, cl *music.Client, maxStages int) error {
	budget := maxStages
	keys, err := cl.GetAllKeys()
	if err != nil {
		return err
	}
	for _, jobID := range keys {
		if budget == 0 {
			return nil
		}
		// Unlocked peek: stale reads are fine, correctness comes from the
		// critical section below.
		raw, err := cl.Get(jobID)
		if err != nil || raw == nil {
			continue
		}
		var peek job
		if err := json.Unmarshal(raw, &peek); err != nil || peek.State == "DONE" {
			continue
		}

		ref, err := cl.CreateLockRef(jobID)
		if err != nil {
			return err
		}
		if err := cl.AwaitLock(jobID, ref, 30*time.Second); err != nil {
			// Lost the race for this job: evict our reference and move on.
			_ = cl.RemoveLockRef(jobID, ref)
			continue
		}

		// executeJobInCriticalSection: read the latest state, then advance.
		for budget != 0 {
			raw, err := cl.CriticalGet(jobID, ref)
			if err != nil {
				return err
			}
			var j job
			if err := json.Unmarshal(raw, &j); err != nil {
				return err
			}
			if j.State == "DONE" {
				break
			}
			j.State = nextStage(j.State)
			j.History = append(j.History, fmt.Sprintf("%s:%s", j.State, name))
			out2, err := json.Marshal(j)
			if err != nil {
				return err
			}
			if err := cl.CriticalPut(jobID, ref, out2); err != nil {
				return err
			}
			fmt.Fprintf(out, "%s: %s -> %s\n", name, jobID, j.State)
			if budget > 0 {
				budget--
			}
			c.Sleep(100 * time.Millisecond) // the homing computation itself
		}
		if budget == 0 {
			return nil // simulated crash: no release, lock left dangling
		}
		if err := cl.ReleaseLock(jobID, ref); err != nil {
			return err
		}
	}
	return nil
}

func nextStage(cur string) string {
	for i, s := range stages {
		if s == cur && i+1 < len(stages) {
			return stages[i+1]
		}
	}
	return "DONE"
}
