package main

import (
	"strings"
	"testing"
)

// TestHoming runs the example in virtual time: worker 1 crashes mid-job,
// worker 2 must finish every job from the latest state, and no stage may
// execute twice.
func TestHoming(t *testing.T) {
	var out strings.Builder
	if err := run(&out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "worker-1: crashed mid-job") {
		t.Errorf("missing worker-1 crash:\n%s", s)
	}
	if !strings.Contains(s, "all jobs DONE and reaped") {
		t.Errorf("jobs did not all complete:\n%s", s)
	}
	// The crashed worker did two stages; its successor must resume from
	// stage 3, not re-execute stages 1-2.
	if !strings.Contains(s, "worker-2@oregon: job-01 -> CONSTRAINTS_SOLVED") {
		t.Errorf("worker-2 did not resume job-01 from the latest state:\n%s", s)
	}
	if n := strings.Count(s, "job-01 -> TEMPLATE_RESOLVED"); n != 1 {
		t.Errorf("job-01 stage TEMPLATE_RESOLVED executed %d times, want 1:\n%s", n, s)
	}
}
