// Quickstart: the paper's Listing 1 — a critical section that reads the
// latest value of a key, updates it, and writes it back with exclusive
// access, against a live (wall-clock) three-site MUSIC cluster.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"strconv"

	"repro/music"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer) error {
	// A three-site cluster on the fast local profile, running in real time.
	c, err := music.New(music.WithProfile(music.ProfileLocal), music.WithRealTime())
	if err != nil {
		return err
	}
	defer c.Close()

	cl := c.Client(c.Sites()[0])

	// Listing 1, spelled out: createLockRef → poll acquireLock →
	// criticalGet → compute → criticalPut → releaseLock.
	lockRef, err := cl.CreateLockRef("counter")
	if err != nil {
		return err
	}
	if err := cl.AwaitLock("counter", lockRef, 0); err != nil {
		return err
	}
	v1, err := cl.CriticalGet("counter", lockRef) // guaranteed latest value
	if err != nil {
		return err
	}
	n := 0
	if v1 != nil {
		n, _ = strconv.Atoi(string(v1))
	}
	if err := cl.CriticalPut("counter", lockRef, []byte(strconv.Itoa(n+1))); err != nil {
		return err
	}
	if err := cl.ReleaseLock("counter", lockRef); err != nil {
		return err
	}
	fmt.Fprintf(out, "explicit critical section: counter %d -> %d\n", n, n+1)

	// The same thing via the RunCritical convenience, from every site.
	for _, site := range c.Sites() {
		err := c.Client(site).RunCritical("counter", func(cs *music.CriticalSection) error {
			v, err := cs.Get()
			if err != nil {
				return err
			}
			n, _ := strconv.Atoi(string(v))
			fmt.Fprintf(out, "site %-8s sees latest value %d, increments\n", site, n)
			return cs.Put([]byte(strconv.Itoa(n + 1)))
		})
		if err != nil {
			return err
		}
	}

	final, err := cl.Get("counter")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "final counter: %s (1 explicit + %d RunCritical increments)\n", final, len(c.Sites()))
	return nil
}
