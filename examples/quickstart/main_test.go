package main

import (
	"strings"
	"testing"
)

// TestQuickstart runs the example end to end (real-time cluster, local
// profile) and checks the counter reaches 1 explicit + 3 RunCritical
// increments.
func TestQuickstart(t *testing.T) {
	var out strings.Builder
	if err := run(&out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "explicit critical section: counter 0 -> 1") {
		t.Errorf("missing explicit section line:\n%s", s)
	}
	if !strings.Contains(s, "final counter: 4") {
		t.Errorf("final counter != 4:\n%s", s)
	}
}
