// Command musicd serves MUSIC's REST API (Fig 1's multi-site web service)
// over an in-process live cluster: one HTTP listener per site, each backed
// by that site's MUSIC replica.
//
//	musicd -addr :8080                      # one listener, first site
//	musicd -addrs :8080,:8081,:8082         # one listener per site
//	musicd -profile local -t 30s
//	musicd -obs=false                       # disable /metrics and /traces
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/httpapi"
	"repro/music"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "musicd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("musicd", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", ":8080", "listen address for the first site")
		addrs   = fs.String("addrs", "", "comma-separated per-site listen addresses (overrides -addr)")
		profile = fs.String("profile", music.ProfileLocal, "latency profile: 11, IUs, IUsEu, local")
		t       = fs.Duration("t", time.Minute, "critical-section bound T")
		obsOn   = fs.Bool("obs", true, "serve metrics and traces on /metrics and /traces")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := []music.Option{music.WithProfile(*profile), music.WithRealTime(), music.WithT(*t)}
	if *obsOn {
		opts = append(opts, music.WithObservability())
	}
	c, err := music.New(opts...)
	if err != nil {
		return err
	}
	defer c.Close()

	sites := c.Sites()
	listen := []string{*addr}
	if *addrs != "" {
		listen = strings.Split(*addrs, ",")
	}
	if len(listen) > len(sites) {
		return fmt.Errorf("%d addresses for %d sites", len(listen), len(sites))
	}

	errc := make(chan error, len(listen))
	for i, a := range listen {
		site := sites[i]
		srv := httpapi.New(c.Client(site))
		log.Printf("serving site %s on %s", site, a)
		go func(a string) {
			errc <- http.ListenAndServe(a, srv)
		}(a)
	}
	return <-errc
}
