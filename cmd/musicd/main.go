// Command musicd serves MUSIC's REST API (Fig 1's multi-site web service).
//
// Single-process mode runs the whole cluster in one process over the
// simulated message plane on the wall clock: one HTTP listener per site,
// each backed by that site's MUSIC replica.
//
//	musicd -addr :8080                      # one listener, first site
//	musicd -addrs :8080,:8081,:8082         # one listener per site
//	musicd -profile local -t 30s
//	musicd -obs=false                       # disable /metrics and /traces
//
// Multi-process mode runs ONE site per process over real TCP (-peers
// switches it on): each process hosts its node's store replica and its
// site's MUSIC replica, and the processes form the replication ring among
// themselves.
//
//	musicd -peers peers.json -site ohio -listen :7001 -addr :8080
//
// Adding -history makes the process record its operation history on a
// Unix-epoch clock and serve it on GET /v1/history; fetching every site's
// ops and merging them by timestamp yields one timeline the internal/history
// ECF checkers can validate (cmd/musicd's tests do exactly this).
//
// where peers.json lists every node in the deployment:
//
//	[
//	  {"id": 0, "site": "ohio",         "addr": "127.0.0.1:7001"},
//	  {"id": 1, "site": "ncalifornia",  "addr": "127.0.0.1:7002"},
//	  {"id": 2, "site": "oregon",       "addr": "127.0.0.1:7003"}
//	]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/history"
	"repro/internal/httpapi"
	"repro/internal/nettrans"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/music"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "musicd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("musicd", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", ":8080", "HTTP listen address (first site in single-process mode)")
		addrs   = fs.String("addrs", "", "comma-separated per-site listen addresses (overrides -addr)")
		profile = fs.String("profile", music.ProfileLocal, "latency profile: 11, IUs, IUsEu, local")
		t       = fs.Duration("t", time.Minute, "critical-section bound T")
		obsOn   = fs.Bool("obs", true, "serve metrics and traces on /metrics and /traces")
		shards  = fs.Int("shards", 1, "per-site lock/data plane shards (keys routed by consistent hash)")

		peersPath = fs.String("peers", "", "peers.json path; enables multi-process mode")
		site      = fs.String("site", "", "this process's site (multi-process mode)")
		listen    = fs.String("listen", "", "transport TCP listen address (default: this node's addr from peers.json)")
		node      = fs.Int("node", -1, "this process's node id (default: the single -site node in peers.json)")
		histOn    = fs.Bool("history", false, "record the operation history and serve it on /v1/history (multi-process mode; timestamps share the Unix epoch so per-process histories merge)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *peersPath != "" {
		return runMulti(*peersPath, *site, *listen, *node, *addr, *t, *obsOn, *histOn, *shards)
	}

	opts := []music.Option{music.WithProfile(*profile), music.WithRealTime(), music.WithT(*t)}
	if *shards > 1 {
		// Each shard coordinates through its own store node, so give every
		// site one node per shard.
		opts = append(opts, music.WithShards(*shards), music.WithNodesPerSite(*shards))
	}
	if *obsOn {
		opts = append(opts, music.WithObservability())
	}
	c, err := music.New(opts...)
	if err != nil {
		return err
	}
	defer c.Close()

	sites := c.Sites()
	listenAddrs := []string{*addr}
	if *addrs != "" {
		listenAddrs = strings.Split(*addrs, ",")
	}
	if len(listenAddrs) > len(sites) {
		return fmt.Errorf("%d addresses for %d sites", len(listenAddrs), len(sites))
	}

	errc := make(chan error, len(listenAddrs))
	for i, a := range listenAddrs {
		site := sites[i]
		srv := httpapi.New(c.Client(site))
		log.Printf("serving site %s on %s", site, a)
		go func(a string) {
			errc <- http.ListenAndServe(a, srv)
		}(a)
	}
	return <-errc
}

// runMulti is one process of a multi-process deployment: a TCP transport
// node in the peer ring, the store replica for that node, the MUSIC replica
// for its site, and the site's REST listener.
func runMulti(peersPath, site, listen string, node int, httpAddr string, t time.Duration, obsOn, histOn bool, shards int) error {
	peers, err := loadPeers(peersPath)
	if err != nil {
		return err
	}
	self, err := pickSelf(peers, site, node)
	if err != nil {
		return err
	}

	// With -history every process clocks from the Unix epoch, so the
	// timestamps in the per-process histories are directly comparable and a
	// checker harness can merge them into one timeline.
	rt := sim.NewReal(1)
	var rec *history.Recorder
	if histOn {
		rt = sim.NewRealAt(time.Unix(0, 0), 1)
		rec = history.New(rt)
	}
	var ob *obs.Obs
	if obsOn {
		ob = obs.New(rt, obs.Options{})
	}
	cfg := nettrans.Config{Self: self.ID, Peers: peers, Obs: ob}
	if listen != "" {
		lis, err := net.Listen("tcp", listen)
		if err != nil {
			return fmt.Errorf("listen %s: %w", listen, err)
		}
		cfg.Listener = lis
	}
	tr, err := nettrans.New(rt, cfg)
	if err != nil {
		return err
	}
	c, err := music.NewOverTransport(tr, music.TransportConfig{
		T:          t,
		Shards:     shards,
		LocalNodes: []transport.NodeID{self.ID},
		Obs:        ob,
		History:    rec,
	})
	if err != nil {
		tr.Close()
		return err
	}
	defer c.Close()

	srv := httpapi.New(c.Client(self.Site))
	log.Printf("node %d (site %s): transport on %s, REST on %s, %d peers",
		self.ID, self.Site, tr.Addr(), httpAddr, len(peers)-1)
	return http.ListenAndServe(httpAddr, srv)
}

func loadPeers(path string) ([]nettrans.Peer, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var peers []nettrans.Peer
	if err := json.Unmarshal(data, &peers); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("%s: empty peer set", path)
	}
	return peers, nil
}

// pickSelf resolves which peer this process is: an explicit -node id, or
// the unique node of -site.
func pickSelf(peers []nettrans.Peer, site string, node int) (nettrans.Peer, error) {
	if node >= 0 {
		for _, p := range peers {
			if int(p.ID) == node {
				return p, nil
			}
		}
		return nettrans.Peer{}, fmt.Errorf("node %d not in peers.json", node)
	}
	if site == "" {
		return nettrans.Peer{}, fmt.Errorf("multi-process mode needs -site or -node")
	}
	var match []nettrans.Peer
	for _, p := range peers {
		if p.Site == site {
			match = append(match, p)
		}
	}
	switch len(match) {
	case 1:
		return match[0], nil
	case 0:
		return nettrans.Peer{}, fmt.Errorf("site %q not in peers.json", site)
	default:
		return nettrans.Peer{}, fmt.Errorf("site %q has %d nodes; pick one with -node", site, len(match))
	}
}
