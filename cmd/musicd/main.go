// Command musicd serves MUSIC's REST API (Fig 1's multi-site web service).
//
// Single-process mode runs the whole cluster in one process over the
// simulated message plane on the wall clock: one HTTP listener per site,
// each backed by that site's MUSIC replica.
//
//	musicd -addr :8080                      # one listener, first site
//	musicd -addrs :8080,:8081,:8082         # one listener per site
//	musicd -profile local -t 30s
//	musicd -obs=false                       # disable /metrics and /traces
//
// Multi-process mode runs ONE site per process over real TCP (-peers
// switches it on): each process hosts its node's store replica and its
// site's MUSIC replica, and the processes form the replication ring among
// themselves.
//
//	musicd -peers peers.json -site ohio -listen :7001 -addr :8080
//
// Adding -history makes the process record its operation history on a
// Unix-epoch clock and serve it on GET /v1/history; fetching every site's
// ops and merging them by timestamp yields one timeline the internal/history
// ECF checkers can validate (cmd/musicd's tests do exactly this).
//
// -leases issues site-scoped holder read leases: any client routed to the
// lockholder's site serves GET /v1/keys/{key} locally for the
// clock-skew-bounded lease window. -adaptive serves critical gets at ONE
// consistency while the live monitor judges the site safe, flips the site
// back to QUORUM when staleness violations trip the threshold, and exports
// the per-site standing on GET /v1/consistency (multi-process mode implies
// -history, which the monitor needs).
//
// where peers.json lists every node in the deployment:
//
//	[
//	  {"id": 0, "site": "ohio",         "addr": "127.0.0.1:7001"},
//	  {"id": 1, "site": "ncalifornia",  "addr": "127.0.0.1:7002"},
//	  {"id": 2, "site": "oregon",       "addr": "127.0.0.1:7003"},
//	  {"id": 3, "site": "dublin",       "addr": "127.0.0.1:7004", "spare": true}
//	]
//
// Live membership: marking a peer "spare": true provisions it outside the
// initial membership — it boots, serves store RPCs, and refuses critical
// sections until a join brings its site in. Any spare in peers.json switches
// the whole deployment to epoch-versioned membership: the non-spare nodes
// replicate a config log (internal/membership over internal/raft), spare
// processes follow it by polling, and every process answers
//
//	GET  /v1/membership                    the current epoch + site set
//	POST /v1/admin/membership              {"op":"join"|"retire"|"replace",
//	                                        "site": s, "with": spare}
//
// A spare process started with -join proposes its own site into the
// membership once it is up (idempotent across restarts), then bulk-pulls
// the rows the new placement assigns it. On every epoch the processes
// update their transport peer tables from the membership's recorded
// addresses, so replacement processes at new addresses become dialable
// without restarts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/history"
	"repro/internal/httpapi"
	"repro/internal/membership"
	"repro/internal/nettrans"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/music"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "musicd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("musicd", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", ":8080", "HTTP listen address (first site in single-process mode)")
		addrs   = fs.String("addrs", "", "comma-separated per-site listen addresses (overrides -addr)")
		profile = fs.String("profile", music.ProfileLocal, "latency profile: 11, IUs, IUsEu, local")
		t       = fs.Duration("t", time.Minute, "critical-section bound T")
		obsOn   = fs.Bool("obs", true, "serve metrics and traces on /metrics and /traces")
		shards  = fs.Int("shards", 1, "per-site lock/data plane shards (keys routed by consistent hash)")

		peersPath = fs.String("peers", "", "peers.json path; enables multi-process mode")
		site      = fs.String("site", "", "this process's site (multi-process mode)")
		listen    = fs.String("listen", "", "transport TCP listen address (default: this node's addr from peers.json)")
		node      = fs.Int("node", -1, "this process's node id (default: the single -site node in peers.json)")
		leases    = fs.Bool("leases", false, "issue site-scoped holder read leases: any client at the lockholder's site serves Get locally for the lease window")
		adaptive  = fs.Bool("adaptive", false, "serve critical gets at ONE while the live consistency monitor judges the site safe; the monitor's standing is served on GET /v1/consistency (multi-process mode implies -history)")

		histOn = fs.Bool("history", false, "record the operation history and serve it on /v1/history (multi-process mode; timestamps share the Unix epoch so per-process histories merge)")
		join   = fs.Bool("join", false, "propose this spare site into the live membership at startup (multi-process mode; the node must be marked \"spare\" in peers.json)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *peersPath != "" {
		return runMulti(multiConfig{
			peersPath: *peersPath,
			site:      *site,
			listen:    *listen,
			node:      *node,
			httpAddr:  *addr,
			t:         *t,
			obsOn:     *obsOn,
			histOn:    *histOn,
			join:      *join,
			shards:    *shards,
			leases:    *leases,
			adaptive:  *adaptive,
		})
	}
	if *join {
		return fmt.Errorf("-join needs multi-process mode (-peers)")
	}

	opts := []music.Option{music.WithProfile(*profile), music.WithRealTime(), music.WithT(*t)}
	if *leases {
		opts = append(opts, music.WithHolderLeases())
	}
	if *adaptive {
		opts = append(opts, music.WithAdaptiveReads())
	}
	if *shards > 1 {
		// Each shard coordinates through its own store node, so give every
		// site one node per shard.
		opts = append(opts, music.WithShards(*shards), music.WithNodesPerSite(*shards))
	}
	if *obsOn {
		opts = append(opts, music.WithObservability())
	}
	c, err := music.New(opts...)
	if err != nil {
		return err
	}
	defer c.Close()

	sites := c.Sites()
	listenAddrs := []string{*addr}
	if *addrs != "" {
		listenAddrs = strings.Split(*addrs, ",")
	}
	if len(listenAddrs) > len(sites) {
		return fmt.Errorf("%d addresses for %d sites", len(listenAddrs), len(sites))
	}

	errc := make(chan error, len(listenAddrs))
	for i, a := range listenAddrs {
		site := sites[i]
		srv := newAPIServer(c, site, *shards)
		log.Printf("serving site %s on %s", site, a)
		go func(a string) {
			errc <- http.ListenAndServe(a, srv)
		}(a)
	}
	return <-errc
}

// newAPIServer builds a site's REST server: one client per plane shard,
// routed by store.ShardOf inside httpapi, so the HTTP front end drives all
// shards concurrently instead of funneling through one client.
func newAPIServer(c *music.Cluster, site string, shards int) *httpapi.Server {
	if shards < 1 {
		shards = 1
	}
	cls := make([]*music.Client, shards)
	for i := range cls {
		cls[i] = c.Client(site)
	}
	return httpapi.NewSharded(cls)
}

// multiConfig bundles runMulti's flag values.
type multiConfig struct {
	peersPath, site, listen string
	node                    int
	httpAddr                string
	t                       time.Duration
	obsOn, histOn, join     bool
	shards                  int
	leases, adaptive        bool
}

// runMulti is one process of a multi-process deployment: a TCP transport
// node in the peer ring, the store replica for that node, the MUSIC replica
// for its site, and the site's REST listener.
func runMulti(mc multiConfig) error {
	peers, spares, err := loadPeers(mc.peersPath)
	if err != nil {
		return err
	}
	self, err := pickSelf(peers, mc.site, mc.node)
	if err != nil {
		return err
	}
	if mc.join && !spares[self.ID] {
		return fmt.Errorf("-join: node %d is not marked \"spare\" in %s", self.ID, mc.peersPath)
	}

	// With -history every process clocks from the Unix epoch, so the
	// timestamps in the per-process histories are directly comparable and a
	// checker harness can merge them into one timeline.
	rt := sim.NewReal(1)
	var rec *history.Recorder
	if mc.histOn || mc.adaptive {
		// Adaptive reads imply -history: the monitor observes the recorded
		// op stream, so it cannot run without a recorder.
		rt = sim.NewRealAt(time.Unix(0, 0), 1)
		rec = history.New(rt)
	}
	// The monitor watches this process's weak reads for staleness and flips
	// the site back to QUORUM on its trip threshold; repairRead (assigned
	// once the cluster exists) wires its violation hook to a quorum read
	// that re-converges the stale replica.
	var mon *history.Monitor
	var repairRead func(key string)
	if mc.adaptive {
		mon = history.NewMonitor(history.MonitorConfig{
			OnViolation: func(site, key string) {
				if repairRead != nil && site == self.Site {
					repairRead(key)
				}
			},
		})
		rec.Attach(mon)
	}
	var ob *obs.Obs
	if mc.obsOn {
		ob = obs.New(rt, obs.Options{})
	}
	cfg := nettrans.Config{Self: self.ID, Peers: peers, Obs: ob}
	if mc.listen != "" {
		lis, err := net.Listen("tcp", mc.listen)
		if err != nil {
			return fmt.Errorf("listen %s: %w", mc.listen, err)
		}
		cfg.Listener = lis
	}
	tr, err := nettrans.New(rt, cfg)
	if err != nil {
		return err
	}

	// Any spare in peers.json switches the deployment to live membership:
	// the initial members replicate the config log, spares follow by
	// polling, and both kinds can drive proposals.
	var (
		view    *membership.View
		propose func(membership.Change) (membership.Membership, error)
	)
	if len(spares) > 0 {
		var mems []membership.Member
		var seeds []transport.NodeID
		for _, p := range peers {
			if spares[p.ID] {
				continue
			}
			mems = append(mems, membership.Member{ID: p.ID, Site: p.Site, Addr: p.Addr})
			seeds = append(seeds, p.ID)
		}
		if len(mems) == 0 {
			return fmt.Errorf("%s marks every node spare; at least one initial member is required", mc.peersPath)
		}
		initial := membership.New(mems)
		if spares[self.ID] {
			// Outside the config group: follow the log by polling members,
			// forward proposals through a serving member.
			view = membership.NewView(initial)
			poller := membership.Poll(tr, self.ID, seeds, view, 0)
			defer poller.Stop()
			propose = func(ch membership.Change) (membership.Membership, error) {
				var lastErr error
				for _, seed := range seeds {
					m, perr := membership.ProposeRemote(tr, self.ID, seed, ch, 0)
					if perr == nil {
						return m, nil
					}
					lastErr = perr
				}
				return membership.Membership{}, lastErr
			}
		} else {
			memLog, lerr := membership.NewLog(membership.LogConfig{
				Transport: tr,
				Group:     initial.NodeIDs(),
				Local:     []transport.NodeID{self.ID},
				Initial:   initial,
			})
			if lerr != nil {
				tr.Close()
				return lerr
			}
			defer memLog.Stop()
			view = memLog.View()
			propose = func(ch membership.Change) (membership.Membership, error) {
				return memLog.Propose(self.ID, ch)
			}
		}
		// Refresh the transport's peer table before the store ring sees each
		// epoch (View subscribers run in registration order), so a node the
		// new placement brings in is dialable by the time state transfer and
		// replication want it — including replacement processes at addresses
		// peers.json never listed.
		view.Subscribe(func(m membership.Membership) {
			log.Printf("membership: %s", m)
			for _, mem := range m.Members {
				if mem.ID == self.ID || mem.Addr == "" {
					continue
				}
				if aerr := tr.AddPeer(mem.ID, mem.Site, mem.Addr); aerr != nil {
					log.Printf("membership: AddPeer n%d: %v", mem.ID, aerr)
				}
			}
		})
	}

	c, err := music.NewOverTransport(tr, music.TransportConfig{
		T:             mc.t,
		Shards:        mc.shards,
		LocalNodes:    []transport.NodeID{self.ID},
		Obs:           ob,
		History:       rec,
		Leases:        mc.leases,
		AdaptiveReads: mc.adaptive,
		Monitor:       mon,
		Membership:    view,
		Propose:       propose,
	})
	if err != nil {
		tr.Close()
		return err
	}
	defer c.Close()
	if mon != nil {
		rep := c.Replica(self.Site)
		repairRead = func(key string) {
			rt.Go(func() { _ = rep.RepairRead(key) })
		}
	}

	// Crash-restart catch-up: pull whatever this node's key ranges
	// accumulated while the process was down, before serving traffic. On a
	// fresh cluster boot peers may not be up yet — that is fine, the pull
	// finds nothing and read repair covers the race.
	if n, serr := c.SyncLocal(); serr != nil {
		log.Printf("startup state transfer: %v", serr)
	} else {
		log.Printf("startup state transfer: caught up %d rows", n)
	}
	if mc.join {
		go joinSelf(c, self.Site)
	}

	srv := newAPIServer(c, self.Site, mc.shards)
	log.Printf("node %d (site %s): transport on %s, REST on %s, %d peers",
		self.ID, self.Site, tr.Addr(), mc.httpAddr, len(peers)-1)
	return http.ListenAndServe(mc.httpAddr, srv)
}

// joinSelf proposes this process's site into the membership, retrying until
// the site is a member. It is idempotent across restarts: if a previous run
// already joined, the poller catches the view up and the loop exits without
// proposing a duplicate.
func joinSelf(c *music.Cluster, site string) {
	for attempt := 0; ; attempt++ {
		if c.Membership().HasSite(site) {
			break
		}
		m, err := c.JoinSite(site)
		if err == nil {
			log.Printf("joined membership: %s", m)
			break
		}
		log.Printf("join %s (attempt %d): %v", site, attempt+1, err)
		time.Sleep(time.Second)
	}
	// Wait for the join epoch to reach this process's own view, then pull
	// the rows the new placement assigns this node (state transfer). The
	// propose path's SyncLocal ran before the poller observed the epoch, so
	// this second pull is the one that actually moves data.
	for i := 0; i < 100 && !c.Membership().HasSite(site); i++ {
		time.Sleep(100 * time.Millisecond)
	}
	if n, err := c.SyncLocal(); err != nil {
		log.Printf("join state transfer: %v", err)
	} else {
		log.Printf("join state transfer: %d rows", n)
	}
}

// peerEntry is one peers.json record: a transport peer plus the optional
// "spare" marker for nodes provisioned outside the initial membership.
type peerEntry struct {
	nettrans.Peer
	Spare bool `json:"spare,omitempty"`
}

func loadPeers(path string) ([]nettrans.Peer, map[transport.NodeID]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var entries []peerEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(entries) == 0 {
		return nil, nil, fmt.Errorf("%s: empty peer set", path)
	}
	peers := make([]nettrans.Peer, len(entries))
	spares := make(map[transport.NodeID]bool)
	for i, e := range entries {
		peers[i] = e.Peer
		if e.Spare {
			spares[e.Peer.ID] = true
		}
	}
	return peers, spares, nil
}

// pickSelf resolves which peer this process is: an explicit -node id, or
// the unique node of -site.
func pickSelf(peers []nettrans.Peer, site string, node int) (nettrans.Peer, error) {
	if node >= 0 {
		for _, p := range peers {
			if int(p.ID) == node {
				return p, nil
			}
		}
		return nettrans.Peer{}, fmt.Errorf("node %d not in peers.json", node)
	}
	if site == "" {
		return nettrans.Peer{}, fmt.Errorf("multi-process mode needs -site or -node")
	}
	var match []nettrans.Peer
	for _, p := range peers {
		if p.Site == site {
			match = append(match, p)
		}
	}
	switch len(match) {
	case 1:
		return match[0], nil
	case 0:
		return nettrans.Peer{}, fmt.Errorf("site %q not in peers.json", site)
	default:
		return nettrans.Peer{}, fmt.Errorf("site %q has %d nodes; pick one with -node", site, len(match))
	}
}
