package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/history"
)

// membershipBody mirrors httpapi's GET /v1/membership response.
type membershipBody struct {
	Epoch int64    `json:"epoch"`
	Sites []string `json:"sites"`
}

func getMembership(t *testing.T, base string) membershipBody {
	t.Helper()
	resp, err := http.Get(base + "/v1/membership")
	if err != nil {
		t.Fatalf("GET /v1/membership: %v", err)
	}
	defer resp.Body.Close()
	var m membershipBody
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode membership: %v", err)
	}
	return m
}

// waitEpoch polls base until its membership view reaches epoch (or fails the
// test after timeout).
func waitEpoch(t *testing.T, base string, epoch int64, timeout time.Duration) membershipBody {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		m := getMembership(t, base)
		if m.Epoch >= epoch {
			return m
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never reached epoch %d (at %d, sites %v)", base, epoch, m.Epoch, m.Sites)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// postMembership drives one reconfiguration through base's admin endpoint,
// retrying transient 503s (config-log leader elections).
func postMembership(t *testing.T, base, body string) membershipBody {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Post(base+"/v1/admin/membership", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST membership: %v", err)
		}
		var m membershipBody
		derr := json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if derr != nil {
				t.Fatalf("decode membership: %v", derr)
			}
			return m
		}
		if resp.StatusCode != http.StatusServiceUnavailable || time.Now().After(deadline) {
			t.Fatalf("POST %s = %d", body, resp.StatusCode)
		}
		time.Sleep(500 * time.Millisecond)
	}
}

// TestThreeProcessLiveMembership runs the tentpole end to end over real TCP
// and real OS processes: a three-site cluster serves critical sections while
// a spare site joins itself (-join), a member retires, and a crashed member
// is replaced by a second spare — all through POST /v1/admin/membership. The
// surviving processes' merged history must pass every ECF checker, epoch
// rules included.
func TestThreeProcessLiveMembership(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns real processes")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "musicd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	sites := []string{"ohio", "ncalifornia", "oregon", "dublin", "frankfurt"}
	ports := freePorts(t, 10)
	entries := make([]map[string]any, 5)
	for i, site := range sites {
		entries[i] = map[string]any{
			"id":   i,
			"site": site,
			"addr": fmt.Sprintf("127.0.0.1:%d", ports[i]),
		}
		if i >= 3 {
			entries[i]["spare"] = true // dublin and frankfurt start outside
		}
	}
	peersJSON, err := json.Marshal(entries)
	if err != nil {
		t.Fatal(err)
	}
	peersPath := filepath.Join(dir, "peers.json")
	if err := os.WriteFile(peersPath, peersJSON, 0o644); err != nil {
		t.Fatal(err)
	}

	siteURL := make(map[string]string, 5)
	procs := make(map[string]*os.Process, 5)
	for i, site := range sites {
		httpAddr := fmt.Sprintf("127.0.0.1:%d", ports[5+i])
		args := []string{"-peers", peersPath, "-site", site, "-addr", httpAddr, "-history"}
		if site == "dublin" {
			args = append(args, "-join")
		}
		cmd := exec.Command(bin, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start %s: %v", site, err)
		}
		proc := cmd.Process
		procs[site] = proc
		t.Cleanup(func() { _ = proc.Kill(); _, _ = proc.Wait() })
		siteURL[site] = "http://" + httpAddr
	}

	deadline := time.Now().Add(20 * time.Second)
	for _, site := range sites {
		for {
			resp, err := http.Get(siteURL[site] + "/v1/health")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("site %s never became healthy: %v", site, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	ohio := &restClient{t: t, base: siteURL["ohio"]}
	dublin := &restClient{t: t, base: siteURL["dublin"]}
	frankfurt := &restClient{t: t, base: siteURL["frankfurt"]}

	// Traffic starts before any reconfiguration.
	ohio.criticalSection("ledger", func(ref int64) {
		ohio.criticalPut("ledger", ref, []byte("v1"))
	})

	// Epoch 2: dublin's -join proposes itself in; every member applies it
	// and the joiner's own poller catches up.
	m := waitEpoch(t, siteURL["ohio"], 2, 45*time.Second)
	if !hasSite(m.Sites, "dublin") {
		t.Fatalf("epoch %d sites %v missing dublin", m.Epoch, m.Sites)
	}
	waitEpoch(t, siteURL["dublin"], 2, 15*time.Second)

	// Epoch 3: planned decommission of oregon, driven through ohio's REST.
	m = postMembership(t, siteURL["ohio"], `{"op":"retire","site":"oregon"}`)
	if m.Epoch != 3 || hasSite(m.Sites, "oregon") {
		t.Fatalf("retire -> epoch %d sites %v", m.Epoch, m.Sites)
	}
	waitEpoch(t, siteURL["dublin"], 3, 15*time.Second)

	// The joined site serves sections and sees pre-join data: state
	// transfer and the new placement both hold.
	dublin.criticalSection("ledger", func(ref int64) {
		if got := dublin.criticalGet("ledger", ref); string(got) != "v1" {
			t.Fatalf("dublin read %q, want v1", got)
		}
		dublin.criticalPut("ledger", ref, []byte("v2"))
	})

	// Epoch 4: ncalifornia crashes (kill -9, no drain) and is replaced by
	// the remaining spare — the recovery path.
	_ = procs["ncalifornia"].Kill()
	_, _ = procs["ncalifornia"].Wait()
	m = postMembership(t, siteURL["ohio"], `{"op":"replace","site":"ncalifornia","with":"frankfurt"}`)
	if m.Epoch != 4 || hasSite(m.Sites, "ncalifornia") || !hasSite(m.Sites, "frankfurt") {
		t.Fatalf("replace -> epoch %d sites %v", m.Epoch, m.Sites)
	}
	waitEpoch(t, siteURL["frankfurt"], 4, 15*time.Second)

	// The replacement serves sections over the reconfigured ring.
	frankfurt.criticalSection("ledger", func(ref int64) {
		if got := frankfurt.criticalGet("ledger", ref); string(got) != "v2" {
			t.Fatalf("frankfurt read %q, want v2", got)
		}
		frankfurt.criticalPut("ledger", ref, []byte("v3"))
	})
	ohio.criticalSection("ledger", func(ref int64) {
		if got := ohio.criticalGet("ledger", ref); string(got) != "v3" {
			t.Fatalf("ohio read-back %q, want v3", got)
		}
	})

	// Merge the surviving processes' histories (ncalifornia died with its
	// ops) and run the full checker set — the epoch rules certify the
	// sections that ran across the three reconfigurations.
	var parts [][]history.Op
	total := 0
	for _, site := range []string{"ohio", "oregon", "dublin", "frankfurt"} {
		ops := fetchHistory(t, siteURL[site])
		total += len(ops)
		parts = append(parts, ops)
	}
	if total == 0 {
		t.Fatal("no process recorded any operations")
	}
	assertCleanHistory(t, mergeHistories(parts...))
}

func hasSite(sites []string, site string) bool {
	for _, s := range sites {
		if s == site {
			return true
		}
	}
	return false
}
