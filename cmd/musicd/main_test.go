package main

import "testing"

func TestRunRejectsBadProfile(t *testing.T) {
	if err := run([]string{"-profile", "mars"}); err == nil {
		t.Fatal("bad profile accepted")
	}
}

func TestRunRejectsTooManyAddrs(t *testing.T) {
	if err := run([]string{"-addrs", ":1,:2,:3,:4"}); err == nil {
		t.Fatal("more addresses than sites accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
