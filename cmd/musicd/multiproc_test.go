package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"repro/internal/history"
	"repro/internal/httpapi"
	"repro/internal/nettrans"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/music"
)

// restClient drives the Table I REST operations against one site's server.
type restClient struct {
	t    *testing.T
	base string
}

func (r *restClient) do(method, path string, body []byte, wantStatus int) []byte {
	r.t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, r.base+path, rd)
	if err != nil {
		r.t.Fatalf("%s %s: %v", method, path, err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		r.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		r.t.Fatalf("%s %s: status %d (want %d): %s", method, path, resp.StatusCode, wantStatus, out)
	}
	return out
}

func (r *restClient) createLockRef(key string) int64 {
	var body struct {
		LockRef int64 `json:"lockRef"`
	}
	if err := json.Unmarshal(r.do("POST", "/v1/locks/"+key, nil, http.StatusCreated), &body); err != nil {
		r.t.Fatalf("createLockRef: %v", err)
	}
	return body.LockRef
}

func (r *restClient) acquireLock(key string, ref int64) bool {
	var body struct {
		Holder bool `json:"holder"`
	}
	path := fmt.Sprintf("/v1/locks/%s/%d", key, ref)
	if err := json.Unmarshal(r.do("GET", path, nil, http.StatusOK), &body); err != nil {
		r.t.Fatalf("acquireLock: %v", err)
	}
	return body.Holder
}

func (r *restClient) acquireUntilHolder(key string, ref int64) {
	r.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !r.acquireLock(key, ref) {
		if time.Now().After(deadline) {
			r.t.Fatalf("lockRef %d never became holder of %q", ref, key)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func (r *restClient) criticalPut(key string, ref int64, value []byte) {
	r.do("PUT", fmt.Sprintf("/v1/keys/%s?lockRef=%d", key, ref), value, http.StatusNoContent)
}

func (r *restClient) criticalGet(key string, ref int64) []byte {
	return r.do("GET", fmt.Sprintf("/v1/keys/%s?lockRef=%d", key, ref), nil, http.StatusOK)
}

func (r *restClient) releaseLock(key string, ref int64) {
	r.do("DELETE", fmt.Sprintf("/v1/locks/%s/%d", key, ref), nil, http.StatusNoContent)
}

// criticalSection runs one full Table I section through this site.
func (r *restClient) criticalSection(key string, fn func(ref int64)) {
	r.t.Helper()
	ref := r.createLockRef(key)
	r.acquireUntilHolder(key, ref)
	fn(ref)
	r.releaseLock(key, ref)
}

var testSites = []string{"ohio", "ncalifornia", "oregon"}

// ecfCheck exercises the full ECF critical-section flow across three sites:
// write under a lock at sites[0], read it back under a new lock at sites[2]
// (a quorum read through a different coordinator), and verify a stale
// lockRef is refused once released.
func ecfCheck(t *testing.T, siteURL map[string]string) {
	t.Helper()
	ohio := &restClient{t: t, base: siteURL[testSites[0]]}
	oregon := &restClient{t: t, base: siteURL[testSites[2]]}

	var staleRef int64
	ohio.criticalSection("inventory", func(ref int64) {
		staleRef = ref
		ohio.criticalPut("inventory", ref, []byte("42 units"))
		if got := ohio.criticalGet("inventory", ref); string(got) != "42 units" {
			t.Fatalf("criticalGet at writer site = %q", got)
		}
	})

	// A released lockRef no longer holds the lock: ECF refuses the
	// critical op (412, the "not the lock holder" refusal).
	ohio.do("PUT", fmt.Sprintf("/v1/keys/inventory?lockRef=%d", staleRef), []byte("stale"), http.StatusPreconditionFailed)

	// A fresh section at another site must see the committed value.
	oregon.criticalSection("inventory", func(ref int64) {
		if got := oregon.criticalGet("inventory", ref); string(got) != "42 units" {
			t.Fatalf("criticalGet at remote site = %q, want the value written at %s", got, testSites[0])
		}
		oregon.criticalPut("inventory", ref, []byte("41 units"))
	})
	ohio.criticalSection("inventory", func(ref int64) {
		if got := ohio.criticalGet("inventory", ref); string(got) != "41 units" {
			t.Fatalf("read-back at %s = %q", testSites[0], got)
		}
	})
}

// TestThreeNodeClusterInProcess builds the multi-process deployment shape —
// three nettrans endpoints, three single-site MUSIC clusters, three REST
// servers — inside one test process and runs the ECF flow over HTTP. All
// three clusters share one history recorder, and the merged timeline must
// pass the ECF checkers: the real TCP path without faults records a clean
// history.
func TestThreeNodeClusterInProcess(t *testing.T) {
	rt := sim.NewReal(1)
	rec := history.New(rt)
	listeners := make([]net.Listener, 3)
	peers := make([]nettrans.Peer, 3)
	for i := range peers {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[i] = lis
		peers[i] = nettrans.Peer{ID: transport.NodeID(i), Site: testSites[i], Addr: lis.Addr().String()}
	}
	siteURL := make(map[string]string, 3)
	for i, p := range peers {
		ob := obs.New(rt, obs.Options{})
		tr, err := nettrans.New(rt, nettrans.Config{Self: p.ID, Peers: peers, Listener: listeners[i], Obs: ob})
		if err != nil {
			t.Fatalf("nettrans.New: %v", err)
		}
		c, err := music.NewOverTransport(tr, music.TransportConfig{
			T:          time.Minute,
			LocalNodes: []transport.NodeID{p.ID},
			Obs:        ob,
			History:    rec,
		})
		if err != nil {
			t.Fatalf("NewOverTransport: %v", err)
		}
		defer c.Close()
		srv := httptest.NewServer(httpapi.New(c.Client(p.Site)))
		defer srv.Close()
		siteURL[p.Site] = srv.URL
	}
	ecfCheck(t, siteURL)

	ops := rec.Ops()
	if len(ops) == 0 {
		t.Fatal("shared recorder saw no operations")
	}
	assertCleanHistory(t, ops)
}

// assertCleanHistory runs the ECF + linearizability checkers over a
// recorded multi-site history and fails on any violation.
func assertCleanHistory(t *testing.T, ops []history.Op) {
	t.Helper()
	res := history.Check(ops, history.CheckOptions{})
	for _, v := range res.Violations {
		t.Errorf("history violation: %s", v)
	}
	if len(res.Unbounded) > 0 {
		t.Errorf("linearizability search exceeded budget on keys %v", res.Unbounded)
	}
	t.Logf("history check: %d ops, %d keys, clean=%t", res.Ops, res.Keys, res.Ok())
}

// fetchHistory pulls one site's recorded ops from its /v1/history endpoint.
func fetchHistory(t *testing.T, baseURL string) []history.Op {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/history")
	if err != nil {
		t.Fatalf("GET /v1/history: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET /v1/history: status %d: %s", resp.StatusCode, body)
	}
	var body struct {
		Site string       `json:"site"`
		Ops  []history.Op `json:"ops"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode history: %v", err)
	}
	return body.Ops
}

// mergeHistories combines per-process histories into one timeline. The
// processes clock from a shared epoch (musicd -history), so sorting by
// response time (invocation as tie-break) reconstructs completion order;
// IDs are renumbered to match.
func mergeHistories(parts ...[]history.Op) []history.Op {
	var all []history.Op
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Resp != all[j].Resp {
			return all[i].Resp < all[j].Resp
		}
		return all[i].Inv < all[j].Inv
	})
	for i := range all {
		all[i].ID = uint64(i + 1)
	}
	return all
}

// TestThreeProcessCluster builds the musicd binary and runs a genuine
// three-process cluster on localhost: one OS process per site, TCP between
// them, REST on top.
func TestThreeProcessCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns real processes")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "musicd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	ports := freePorts(t, 6)
	peers := make([]nettrans.Peer, 3)
	for i := range peers {
		peers[i] = nettrans.Peer{ID: transport.NodeID(i), Site: testSites[i], Addr: fmt.Sprintf("127.0.0.1:%d", ports[i])}
	}
	peersJSON, err := json.Marshal(peers)
	if err != nil {
		t.Fatal(err)
	}
	peersPath := filepath.Join(dir, "peers.json")
	if err := os.WriteFile(peersPath, peersJSON, 0o644); err != nil {
		t.Fatal(err)
	}

	siteURL := make(map[string]string, 3)
	for i, p := range peers {
		httpAddr := fmt.Sprintf("127.0.0.1:%d", ports[3+i])
		// -leases and -adaptive ride along so the flag plumbing for the
		// adaptive read plane is exercised over a real multi-process
		// deployment; the merged history must still check clean.
		cmd := exec.Command(bin, "-peers", peersPath, "-site", p.Site, "-addr", httpAddr, "-history", "-leases", "-adaptive")
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start %s: %v", p.Site, err)
		}
		proc := cmd.Process
		t.Cleanup(func() { _ = proc.Kill(); _, _ = cmd.Process.Wait() })
		siteURL[p.Site] = "http://" + httpAddr
	}

	// Wait until every process answers its health check.
	deadline := time.Now().Add(15 * time.Second)
	for _, site := range testSites {
		for {
			resp, err := http.Get(siteURL[site] + "/v1/health")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("site %s never became healthy: %v", site, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	ecfCheck(t, siteURL)

	// -adaptive serves the live monitor's standing on every process.
	for _, site := range testSites {
		resp, err := http.Get(siteURL[site] + "/v1/consistency")
		if err != nil {
			t.Fatalf("GET /v1/consistency at %s: %v", site, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/consistency at %s: status %d", site, resp.StatusCode)
		}
	}

	// Each process recorded its own history on the shared Unix-epoch clock;
	// fetch all three, merge them into one timeline, and check it — the
	// genuine multi-process ECF validation over real TCP.
	var parts [][]history.Op
	total := 0
	for _, site := range testSites {
		ops := fetchHistory(t, siteURL[site])
		total += len(ops)
		parts = append(parts, ops)
	}
	if total == 0 {
		t.Fatal("no process recorded any operations")
	}
	assertCleanHistory(t, mergeHistories(parts...))
}

// freePorts reserves n distinct ports by binding and releasing them.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	for i := range ports {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = lis.Addr().(*net.TCPAddr).Port
		lis.Close()
	}
	return ports
}
