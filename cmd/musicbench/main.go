// Command musicbench regenerates the tables and figures of the paper's
// evaluation (§VIII, §X-B) on the simulated substrates and prints them as
// aligned text or markdown.
//
// Usage:
//
//	musicbench -exp all                 # every artifact (minutes of wall time)
//	musicbench -exp fig4a,fig6a -quick  # selected artifacts, small sweeps
//	musicbench -list                    # enumerate experiment ids
//	musicbench -exp all -markdown > results.md
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "musicbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("musicbench", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "", "comma-separated experiment ids, or 'all'")
		list     = fs.Bool("list", false, "list experiment ids and exit")
		quick    = fs.Bool("quick", false, "shorter measurement windows and smaller sweeps")
		markdown = fs.Bool("markdown", false, "emit GitHub-flavored markdown tables")
		workers  = fs.Int("workers", 0, "closed-loop workers per site (0 = default)")
		quiet    = fs.Bool("quiet", false, "suppress progress output")
		jsonOut  = fs.String("json", "", "with -exp fastpath, transport, soak, scale or readpath: also write per-config results as JSON to this path (pick one experiment per path)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *exp == "" {
		fs.Usage()
		return fmt.Errorf("pick experiments with -exp (ids: %s, or 'all')", strings.Join(bench.IDs(), ", "))
	}

	opts := bench.Options{Quick: *quick, Workers: *workers, FastpathJSON: *jsonOut, TransportJSON: *jsonOut, SoakJSON: *jsonOut, ScaleJSON: *jsonOut, ReadpathJSON: *jsonOut}
	if !*quiet {
		opts.Log = os.Stderr
	}
	tables, err := bench.Run(strings.Split(*exp, ","), opts)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if *markdown {
			fmt.Print(t.Markdown())
		} else {
			fmt.Println(t.String())
		}
	}
	return nil
}
