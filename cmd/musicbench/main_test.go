package main

import (
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestRunRequiresExperiments(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no -exp accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunTable2BothFormats(t *testing.T) {
	if err := run([]string{"-exp", "table2", "-quick", "-quiet"}); err != nil {
		t.Fatalf("table2: %v", err)
	}
	if err := run([]string{"-exp", "table2", "-quick", "-quiet", "-markdown"}); err != nil {
		t.Fatalf("table2 markdown: %v", err)
	}
}
