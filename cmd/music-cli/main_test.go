package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/httpapi"
	"repro/music"
)

// harness serves a live cluster through the REST API for the CLI to hit.
func harness(t *testing.T) string {
	t.Helper()
	c, err := music.New(music.WithProfile(music.ProfileLocal), music.WithRealTime())
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	t.Cleanup(c.Close)
	srv := httptest.NewServer(httpapi.New(c.Client("site-a")))
	t.Cleanup(srv.Close)
	return srv.URL
}

func runCLI(t *testing.T, url string, args ...string) (string, error) {
	t.Helper()
	var out strings.Builder
	err := run(append([]string{"-addr", url}, args...), &out)
	return out.String(), err
}

func TestCLIIncrementFlow(t *testing.T) {
	url := harness(t)
	for want := 1; want <= 3; want++ {
		out, err := runCLI(t, url, "incr", "counter")
		if err != nil {
			t.Fatalf("incr %d: %v", want, err)
		}
		if strings.TrimSpace(out) != string(rune('0'+want)) {
			t.Fatalf("incr output = %q, want %d", out, want)
		}
	}
}

func TestCLIExplicitLockOps(t *testing.T) {
	url := harness(t)
	out, err := runCLI(t, url, "lock", "k")
	if err != nil {
		t.Fatalf("lock: %v", err)
	}
	ref := strings.TrimSpace(out)
	if ref == "" || ref == "0" {
		t.Fatalf("lock ref = %q", ref)
	}
	if _, err := runCLI(t, url, "put", "k", "-ref", ref, "-value", "hello"); err != nil {
		t.Fatalf("put: %v", err)
	}
	out, err = runCLI(t, url, "get", "k", "-ref", ref)
	if err != nil || strings.TrimSpace(out) != "hello" {
		t.Fatalf("get = (%q, %v)", out, err)
	}
	if _, err := runCLI(t, url, "release", "k", "-ref", ref); err != nil {
		t.Fatalf("release: %v", err)
	}
	// Stale ref now conflicts.
	if _, err := runCLI(t, url, "lock", "k"); err != nil {
		t.Fatalf("relock: %v", err)
	}
	if _, err := runCLI(t, url, "put", "k", "-ref", ref, "-value", "stale"); err == nil {
		t.Fatal("stale put succeeded")
	}
}

func TestCLIKeysAndEventualOps(t *testing.T) {
	url := harness(t)
	if _, err := runCLI(t, url, "put", "plain", "-value", "v"); err != nil {
		t.Fatalf("eventual put: %v", err)
	}
	out, err := runCLI(t, url, "get", "plain")
	if err != nil || strings.TrimSpace(out) != "v" {
		t.Fatalf("eventual get = (%q, %v)", out, err)
	}
	out, err = runCLI(t, url, "keys")
	if err != nil || !strings.Contains(out, "plain") {
		t.Fatalf("keys = (%q, %v)", out, err)
	}
}

func TestCLIUsageErrors(t *testing.T) {
	url := harness(t)
	if _, err := runCLI(t, url); err == nil {
		t.Fatal("no command accepted")
	}
	if _, err := runCLI(t, url, "bogus", "k"); err == nil {
		t.Fatal("bogus command accepted")
	}
	if _, err := runCLI(t, url, "put"); err == nil {
		t.Fatal("put without key accepted")
	}
}
