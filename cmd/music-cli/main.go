// Command music-cli talks to a musicd REST endpoint: it can run whole
// critical sections or individual Table I operations from the shell.
//
//	music-cli -addr http://localhost:8080 lock counter
//	music-cli -addr http://localhost:8080 put counter -ref 3 -value 42
//	music-cli -addr http://localhost:8080 get counter -ref 3
//	music-cli -addr http://localhost:8080 release counter -ref 3
//	music-cli -addr http://localhost:8080 keys
//	music-cli -addr http://localhost:8080 incr counter    # full critical section
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "music-cli:", err)
		os.Exit(1)
	}
}

type cli struct {
	base string
	hc   *http.Client
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("music-cli", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "musicd base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("usage: music-cli [-addr URL] lock|acquire|put|get|delete|release|force-release|keys|incr ...")
	}
	c := &cli{base: strings.TrimRight(*addr, "/"), hc: &http.Client{Timeout: 30 * time.Second}}

	cmd, rest := rest[0], rest[1:]
	sub := flag.NewFlagSet(cmd, flag.ContinueOnError)
	ref := sub.Int64("ref", 0, "lock reference")
	val := sub.String("value", "", "value to write")

	key := ""
	if cmd != "keys" {
		if len(rest) == 0 {
			return fmt.Errorf("%s: key required", cmd)
		}
		key, rest = rest[0], rest[1:]
	}
	if err := sub.Parse(rest); err != nil {
		return err
	}

	switch cmd {
	case "lock":
		r, err := c.createRef(key)
		if err != nil {
			return err
		}
		if err := c.await(key, r); err != nil {
			return err
		}
		fmt.Fprintf(out, "%d\n", r)
		return nil
	case "acquire":
		holder, err := c.acquire(key, *ref)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%v\n", holder)
		return nil
	case "put":
		q := ""
		if *ref != 0 {
			q = "?lockRef=" + strconv.FormatInt(*ref, 10)
		}
		return c.expect(http.StatusNoContent, "PUT", "/v1/keys/"+key+q, *val, nil)
	case "get":
		q := ""
		if *ref != 0 {
			q = "?lockRef=" + strconv.FormatInt(*ref, 10)
		}
		body, err := c.body("GET", "/v1/keys/"+key+q, "")
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s\n", body)
		return nil
	case "delete":
		return c.expect(http.StatusNoContent, "DELETE",
			fmt.Sprintf("/v1/keys/%s?lockRef=%d", key, *ref), "", nil)
	case "release":
		return c.expect(http.StatusNoContent, "DELETE",
			fmt.Sprintf("/v1/locks/%s/%d", key, *ref), "", nil)
	case "force-release":
		return c.expect(http.StatusNoContent, "DELETE",
			fmt.Sprintf("/v1/locks/%s/%d?forced=1", key, *ref), "", nil)
	case "keys":
		body, err := c.body("GET", "/v1/keys", "")
		if err != nil {
			return err
		}
		var parsed struct {
			Keys []string `json:"keys"`
		}
		if err := json.Unmarshal([]byte(body), &parsed); err != nil {
			return err
		}
		for _, k := range parsed.Keys {
			fmt.Fprintln(out, k)
		}
		return nil
	case "incr":
		return c.incr(out, key)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// incr runs a whole critical section: lock, read, increment, write, unlock.
func (c *cli) incr(out io.Writer, key string) error {
	ref, err := c.createRef(key)
	if err != nil {
		return err
	}
	if err := c.await(key, ref); err != nil {
		return err
	}
	defer func() {
		_ = c.expect(http.StatusNoContent, "DELETE", fmt.Sprintf("/v1/locks/%s/%d", key, ref), "", nil)
	}()
	cur, err := c.body("GET", fmt.Sprintf("/v1/keys/%s?lockRef=%d", key, ref), "")
	n := 0
	if err == nil {
		n, _ = strconv.Atoi(cur)
	}
	next := strconv.Itoa(n + 1)
	if err := c.expect(http.StatusNoContent, "PUT",
		fmt.Sprintf("/v1/keys/%s?lockRef=%d", key, ref), next, nil); err != nil {
		return err
	}
	fmt.Fprintf(out, "%s\n", next)
	return nil
}

func (c *cli) createRef(key string) (int64, error) {
	var created struct {
		LockRef int64 `json:"lockRef"`
	}
	if err := c.expect(http.StatusCreated, "POST", "/v1/locks/"+key, "", &created); err != nil {
		return 0, err
	}
	return created.LockRef, nil
}

func (c *cli) acquire(key string, ref int64) (bool, error) {
	var acq struct {
		Holder bool `json:"holder"`
	}
	err := c.expect(http.StatusOK, "GET", fmt.Sprintf("/v1/locks/%s/%d", key, ref), "", &acq)
	return acq.Holder, err
}

func (c *cli) await(key string, ref int64) error {
	backoff := 5 * time.Millisecond
	for i := 0; i < 2000; i++ {
		holder, err := c.acquire(key, ref)
		if err != nil {
			return err
		}
		if holder {
			return nil
		}
		time.Sleep(backoff)
		if backoff < 250*time.Millisecond {
			backoff *= 2
		}
	}
	return fmt.Errorf("lock %s/%d: gave up waiting", key, ref)
}

// expect performs a request, demands a status, and optionally decodes JSON.
func (c *cli) expect(status int, method, path, body string, into any) error {
	text, code, err := c.do(method, path, body)
	if err != nil {
		return err
	}
	if code != status {
		return fmt.Errorf("%s %s: %d: %s", method, path, code, strings.TrimSpace(text))
	}
	if into != nil {
		return json.Unmarshal([]byte(text), into)
	}
	return nil
}

func (c *cli) body(method, path, body string) (string, error) {
	text, code, err := c.do(method, path, body)
	if err != nil {
		return "", err
	}
	if code/100 != 2 {
		return "", fmt.Errorf("%s %s: %d: %s", method, path, code, strings.TrimSpace(text))
	}
	return text, nil
}

func (c *cli) do(method, path, body string) (string, int, error) {
	req, err := http.NewRequest(method, c.base+path, strings.NewReader(body))
	if err != nil {
		return "", 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", 0, err
	}
	return string(b), resp.StatusCode, nil
}
