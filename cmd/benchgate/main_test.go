package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDoc(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baselineDoc = `{
  "experiment": "fastpath",
  "results": [
    {"workload": "1get1put", "config": "sync", "mean_us": 600000, "p99_us": 610000, "coord_read_bytes": 24080},
    {"workload": "1get1put", "config": "cache", "mean_us": 550000, "p99_us": 560000, "coord_read_bytes": 24080}
  ]
}`

func TestGatePassesWithinThreshold(t *testing.T) {
	base := writeDoc(t, "base.json", baselineDoc)
	cand := writeDoc(t, "cand.json", strings.ReplaceAll(baselineDoc, "600000", "630000"))
	if err := run([]string{"-baseline", base, "-candidate", cand}, os.Stdout); err != nil {
		t.Fatalf("5%% drift failed the gate: %v", err)
	}
}

func TestGateFailsOnSyntheticRegression(t *testing.T) {
	base := writeDoc(t, "base.json", baselineDoc)
	cand := writeDoc(t, "cand.json", baselineDoc)
	// The CI dry run: identical measurements inflated 20% must fail.
	err := run([]string{"-baseline", base, "-candidate", cand, "-inflate", "1.2"}, os.Stdout)
	if err == nil {
		t.Fatal("20% synthetic regression passed the gate")
	}
	if !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("unexpected gate error: %v", err)
	}
}

func TestGateHonorsAbsoluteFloor(t *testing.T) {
	// A 50% relative regression on a 1ms metric is below the 2ms absolute
	// floor — real-time measurement noise, not a regression.
	base := writeDoc(t, "base.json", `{
  "experiment": "transport",
  "results": [{"op": "acquireLock", "backend": "tcp", "mean_us": 1000, "p99_us": 1200}]
}`)
	cand := writeDoc(t, "cand.json", `{
  "experiment": "transport",
  "results": [{"op": "acquireLock", "backend": "tcp", "mean_us": 1500, "p99_us": 1900}]
}`)
	if err := run([]string{"-baseline", base, "-candidate", cand}, os.Stdout); err != nil {
		t.Fatalf("sub-floor drift failed the gate: %v", err)
	}
	if err := run([]string{"-baseline", base, "-candidate", cand, "-min-delta-us", "100"}, os.Stdout); err == nil {
		t.Fatal("50% regression passed with the floor lowered")
	}
}

func TestGateRejectsMismatchedExperiments(t *testing.T) {
	base := writeDoc(t, "base.json", baselineDoc)
	cand := writeDoc(t, "cand.json", strings.ReplaceAll(baselineDoc, "fastpath", "transport"))
	if err := run([]string{"-baseline", base, "-candidate", cand}, os.Stdout); err == nil {
		t.Fatal("mismatched experiments accepted")
	}
}
