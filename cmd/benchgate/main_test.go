package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDoc(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baselineDoc = `{
  "experiment": "fastpath",
  "results": [
    {"workload": "1get1put", "config": "sync", "mean_us": 600000, "p99_us": 610000, "coord_read_bytes": 24080},
    {"workload": "1get1put", "config": "cache", "mean_us": 550000, "p99_us": 560000, "coord_read_bytes": 24080}
  ]
}`

func TestGatePassesWithinThreshold(t *testing.T) {
	base := writeDoc(t, "base.json", baselineDoc)
	cand := writeDoc(t, "cand.json", strings.ReplaceAll(baselineDoc, "600000", "630000"))
	if err := run([]string{"-baseline", base, "-candidate", cand}, os.Stdout); err != nil {
		t.Fatalf("5%% drift failed the gate: %v", err)
	}
}

func TestGateFailsOnSyntheticRegression(t *testing.T) {
	base := writeDoc(t, "base.json", baselineDoc)
	cand := writeDoc(t, "cand.json", baselineDoc)
	// The CI dry run: identical measurements inflated 20% must fail.
	err := run([]string{"-baseline", base, "-candidate", cand, "-inflate", "1.2"}, os.Stdout)
	if err == nil {
		t.Fatal("20% synthetic regression passed the gate")
	}
	if !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("unexpected gate error: %v", err)
	}
}

func TestGateHonorsAbsoluteFloor(t *testing.T) {
	// A 50% relative regression on a 1ms metric is below the 2ms absolute
	// floor — real-time measurement noise, not a regression.
	base := writeDoc(t, "base.json", `{
  "experiment": "transport",
  "results": [{"op": "acquireLock", "backend": "tcp", "mean_us": 1000, "p99_us": 1200}]
}`)
	cand := writeDoc(t, "cand.json", `{
  "experiment": "transport",
  "results": [{"op": "acquireLock", "backend": "tcp", "mean_us": 1500, "p99_us": 1900}]
}`)
	if err := run([]string{"-baseline", base, "-candidate", cand}, os.Stdout); err != nil {
		t.Fatalf("sub-floor drift failed the gate: %v", err)
	}
	if err := run([]string{"-baseline", base, "-candidate", cand, "-min-delta-us", "100"}, os.Stdout); err == nil {
		t.Fatal("50% regression passed with the floor lowered")
	}
}

const scaleDoc = `{
  "experiment": "scale",
  "results": [
    {"shards": "1", "ops_per_sec": 4000, "mean_us": 44000, "p99_us": 45000},
    {"shards": "4", "ops_per_sec": 14000, "mean_us": 12000, "p99_us": 18000}
  ]
}`

func TestGateFailsOnThroughputDrop(t *testing.T) {
	base := writeDoc(t, "base.json", scaleDoc)
	// 4-shard throughput down 30%; latencies unchanged.
	cand := writeDoc(t, "cand.json", strings.ReplaceAll(scaleDoc, `"ops_per_sec": 14000`, `"ops_per_sec": 9800`))
	var out strings.Builder
	err := run([]string{"-baseline", base, "-candidate", cand}, &out)
	if err == nil {
		t.Fatalf("30%% throughput drop passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ops_per_sec") {
		t.Fatalf("regression report missing ops_per_sec:\n%s", out.String())
	}
}

func TestGateAllowsThroughputGain(t *testing.T) {
	base := writeDoc(t, "base.json", scaleDoc)
	cand := writeDoc(t, "cand.json", strings.ReplaceAll(scaleDoc, `"ops_per_sec": 14000`, `"ops_per_sec": 20000`))
	var out strings.Builder
	if err := run([]string{"-baseline", base, "-candidate", cand}, &out); err != nil {
		t.Fatalf("throughput improvement failed the gate: %v\n%s", err, out.String())
	}
}

func TestGateThroughputAbsoluteFloor(t *testing.T) {
	// A 50% relative drop that is only 5 ops/s absolute stays under the
	// default -min-delta-per-sec floor.
	base := writeDoc(t, "base.json", `{
  "experiment": "scale",
  "results": [{"shards": "1", "ops_per_sec": 10, "p99_us": 45000}]
}`)
	cand := writeDoc(t, "cand.json", `{
  "experiment": "scale",
  "results": [{"shards": "1", "ops_per_sec": 5, "p99_us": 45000}]
}`)
	if err := run([]string{"-baseline", base, "-candidate", cand}, os.Stdout); err != nil {
		t.Fatalf("sub-floor throughput drop failed the gate: %v", err)
	}
	if err := run([]string{"-baseline", base, "-candidate", cand, "-min-delta-per-sec", "1"}, os.Stdout); err == nil {
		t.Fatal("drop above a 1 ops/s floor passed")
	}
}

func TestGateInflateWorsensThroughput(t *testing.T) {
	// The CI dry run must catch throughput regressions too: -inflate divides
	// *_per_sec while it multiplies *_us, so identical artifacts fail on
	// both metric kinds.
	base := writeDoc(t, "base.json", scaleDoc)
	cand := writeDoc(t, "cand.json", scaleDoc)
	var out strings.Builder
	err := run([]string{"-baseline", base, "-candidate", cand, "-inflate", "1.2"}, &out)
	if err == nil {
		t.Fatalf("-inflate 1.2 on identical scale artifacts passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ops_per_sec") {
		t.Fatalf("inflate did not worsen throughput:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "p99_us") {
		t.Fatalf("inflate did not worsen latency:\n%s", out.String())
	}
}

func TestGateRejectsMismatchedExperiments(t *testing.T) {
	base := writeDoc(t, "base.json", baselineDoc)
	cand := writeDoc(t, "cand.json", strings.ReplaceAll(baselineDoc, "fastpath", "transport"))
	if err := run([]string{"-baseline", base, "-candidate", cand}, os.Stdout); err == nil {
		t.Fatal("mismatched experiments accepted")
	}
}
