// Command benchgate compares a freshly measured BENCH_*.json artifact
// against its committed baseline and exits non-zero if any headline latency
// metric regressed beyond the threshold. It is the CI bench-regression
// gate:
//
//	musicbench -exp fastpath -json new.json
//	benchgate -baseline BENCH_fastpath.json -candidate new.json
//
// Rows are matched by their identity fields (every string-valued field:
// workload, config, op, backend, ...) and each numeric field ending in
// "_us" (lower is better) or "_per_sec" (higher is better) is compared. A
// latency metric regresses when it exceeds the baseline by more than
// -threshold (relative) AND by more than -min-delta-us (absolute); a
// throughput metric regresses when it falls below the baseline by more
// than -threshold AND by more than -min-delta-per-sec. The absolute floors
// keep noise in real-time-measured metrics from tripping the relative
// check. Improvements never fail.
//
// -inflate worsens every candidate metric before comparison (multiplies
// latencies, divides throughputs); CI uses -inflate 1.2 as a dry run
// proving the gate actually fails on a 20% regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

type doc struct {
	Experiment string           `json:"experiment"`
	Results    []map[string]any `json:"results"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		baseline   = fs.String("baseline", "", "committed baseline JSON (required)")
		candidate  = fs.String("candidate", "", "freshly measured JSON (required)")
		threshold  = fs.Float64("threshold", 0.10, "max allowed relative regression per metric")
		minDelta   = fs.Float64("min-delta-us", 2000, "ignore latency regressions smaller than this many µs")
		minDeltaPS = fs.Float64("min-delta-per-sec", 50, "ignore throughput regressions smaller than this many ops/s")
		inflate    = fs.Float64("inflate", 1.0, "worsen candidate metrics before comparing (CI dry-run)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baseline == "" || *candidate == "" {
		return fmt.Errorf("both -baseline and -candidate are required")
	}
	base, err := load(*baseline)
	if err != nil {
		return err
	}
	cand, err := load(*candidate)
	if err != nil {
		return err
	}
	if base.Experiment != cand.Experiment {
		return fmt.Errorf("experiment mismatch: baseline %q vs candidate %q", base.Experiment, cand.Experiment)
	}

	baseRows := index(base.Results)
	var regressions []string
	checked := 0
	for _, row := range cand.Results {
		id := identity(row)
		bRow, ok := baseRows[id]
		if !ok {
			// New configurations have no baseline yet; the next baseline
			// refresh picks them up.
			fmt.Fprintf(out, "benchgate: %s [%s]: no baseline row, skipped\n", cand.Experiment, id)
			continue
		}
		for _, metric := range metricNames(row) {
			bVal, bOK := number(bRow[metric])
			cVal, cOK := number(row[metric])
			if !bOK || !cOK {
				continue
			}
			checked++
			if strings.HasSuffix(metric, "_per_sec") {
				// Higher is better: -inflate worsens by dividing.
				if *inflate != 0 {
					cVal /= *inflate
				}
				drop := bVal - cVal
				if bVal > 0 && drop > *minDeltaPS && drop/bVal > *threshold {
					regressions = append(regressions,
						fmt.Sprintf("%s [%s] %s: %.0f/s -> %.0f/s (-%.1f%%, threshold %.1f%%)",
							cand.Experiment, id, metric, bVal, cVal, 100*drop/bVal, 100**threshold))
				}
				continue
			}
			cVal *= *inflate
			delta := cVal - bVal
			if bVal > 0 && delta > *minDelta && delta/bVal > *threshold {
				regressions = append(regressions,
					fmt.Sprintf("%s [%s] %s: %.0fµs -> %.0fµs (+%.1f%%, threshold %.1f%%)",
						cand.Experiment, id, metric, bVal, cVal, 100*delta/bVal, 100**threshold))
			}
		}
	}
	if checked == 0 {
		return fmt.Errorf("no comparable metrics between %s and %s", *baseline, *candidate)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(out, "REGRESSION:", r)
		}
		return fmt.Errorf("%d metric(s) regressed beyond %.0f%%", len(regressions), 100**threshold)
	}
	fmt.Fprintf(out, "benchgate: %s: %d metrics within %.0f%% of baseline\n",
		cand.Experiment, checked, 100**threshold)
	return nil
}

func load(path string) (doc, error) {
	var d doc
	data, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(data, &d); err != nil {
		return d, fmt.Errorf("%s: %v", path, err)
	}
	if d.Experiment == "" || len(d.Results) == 0 {
		return d, fmt.Errorf("%s: not a bench artifact (missing experiment/results)", path)
	}
	return d, nil
}

// identity joins a row's string-valued fields into a stable row key.
func identity(row map[string]any) string {
	keys := make([]string, 0, len(row))
	for k, v := range row {
		if _, ok := v.(string); ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%s", k, row[k]))
	}
	return strings.Join(parts, " ")
}

// metricNames lists a row's gated metrics: numeric fields ending in "_us"
// (lower is better) or "_per_sec" (higher is better).
func metricNames(row map[string]any) []string {
	var names []string
	for k, v := range row {
		if _, ok := number(v); ok && (strings.HasSuffix(k, "_us") || strings.HasSuffix(k, "_per_sec")) {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	return names
}

func number(v any) (float64, bool) {
	f, ok := v.(float64)
	return f, ok
}

func index(rows []map[string]any) map[string]map[string]any {
	m := make(map[string]map[string]any, len(rows))
	for _, row := range rows {
		m[identity(row)] = row
	}
	return m
}
