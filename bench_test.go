// Package repro's root benchmarks: one testing.B benchmark per table and
// figure of the paper's evaluation, each delegating to the experiment
// harness in internal/bench. Benchmarks run the quick parameterization so
// `go test -bench=. -benchmem` finishes in minutes; the full sweeps are
// `go run ./cmd/musicbench -exp all`.
//
// Each benchmark reports the headline figure of its artifact through
// b.ReportMetric and logs the full table with -v.
package repro

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/bench"
)

// runExperiment executes one experiment per b.N batch (virtual-time
// measurement: wall-clock b.N scaling adds nothing, so one run per
// iteration is the honest unit).
func runExperiment(b *testing.B, id string) []bench.Table {
	b.Helper()
	exp, ok := bench.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	opts := bench.Options{Quick: true, Workers: 60}
	var tables []bench.Table
	for i := 0; i < b.N; i++ {
		tables = exp.Run(opts)
	}
	for _, t := range tables {
		b.Logf("\n%s", t.String())
	}
	return tables
}

// metricFromCell parses a throughput or latency cell into a float for
// ReportMetric (best effort; unparseable cells report nothing).
func metricFromCell(cell string) (float64, bool) {
	mult := 1.0
	switch {
	case strings.HasSuffix(cell, "K"):
		mult, cell = 1000, strings.TrimSuffix(cell, "K")
	case strings.HasSuffix(cell, "µs"):
		mult, cell = 0.001, strings.TrimSuffix(cell, "µs")
	case strings.HasSuffix(cell, "ms"):
		mult, cell = 1, strings.TrimSuffix(cell, "ms")
	case strings.HasSuffix(cell, "s"):
		mult, cell = 1000, strings.TrimSuffix(cell, "s")
	case strings.HasSuffix(cell, "x"):
		mult, cell = 1, strings.TrimSuffix(cell, "x")
	}
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		return 0, false
	}
	return v * mult, true
}

func reportCell(b *testing.B, tables []bench.Table, row, col int, unit string) {
	b.Helper()
	if len(tables) == 0 || row >= len(tables[0].Rows) || col >= len(tables[0].Rows[row]) {
		return
	}
	if v, ok := metricFromCell(tables[0].Rows[row][col]); ok {
		b.ReportMetric(v, unit)
	}
}

func BenchmarkTable2LatencyProfiles(b *testing.B) {
	runExperiment(b, "table2")
}

func BenchmarkFig4aThroughputByProfile(b *testing.B) {
	tables := runExperiment(b, "fig4a")
	// Headline: MUSIC throughput on the IUs profile (paper: ≈885 op/s).
	reportCell(b, tables, 1, 2, "music-ius-ops/s")
}

func BenchmarkFig4bThroughputByClusterSize(b *testing.B) {
	tables := runExperiment(b, "fig4b")
	reportCell(b, tables, 0, 1, "music-3node-ops/s")
}

func BenchmarkFig5aLatencyByProfile(b *testing.B) {
	tables := runExperiment(b, "fig5a")
	// Headline: MSCP/MUSIC latency ratio on IUs (paper: ≈1.3x).
	reportCell(b, tables, 1, 4, "mscp/music-ratio")
}

func BenchmarkFig5bOperationBreakdown(b *testing.B) {
	tables := runExperiment(b, "fig5b")
	// Headline: createLockRef mean (paper: 219-230ms).
	reportCell(b, tables, 0, 2, "createlockref-ms")
}

func BenchmarkFig6aBatchSize(b *testing.B) {
	tables := runExperiment(b, "fig6a")
	// Headline: MUSIC/ZooKeeper ratio at the largest measured batch.
	if len(tables) > 0 && len(tables[0].Rows) > 0 {
		reportCell(b, tables, len(tables[0].Rows)-1, 4, "music/zk-ratio")
	}
}

func BenchmarkFig6bDataSize(b *testing.B) {
	tables := runExperiment(b, "fig6b")
	if len(tables) > 0 && len(tables[0].Rows) > 0 {
		reportCell(b, tables, len(tables[0].Rows)-1, 4, "music/zk-ratio")
	}
}

func BenchmarkFig7aCrdbBatchSize(b *testing.B) {
	tables := runExperiment(b, "fig7a")
	if len(tables) > 0 && len(tables[0].Rows) > 0 {
		reportCell(b, tables, len(tables[0].Rows)-1, 3, "cdb/music-ratio")
	}
}

func BenchmarkFig7bCrdbDataSize(b *testing.B) {
	tables := runExperiment(b, "fig7b")
	if len(tables) > 0 && len(tables[0].Rows) > 0 {
		reportCell(b, tables, len(tables[0].Rows)-1, 3, "cdb/music-ratio")
	}
}

func BenchmarkFig8LatencyCDF(b *testing.B) {
	tables := runExperiment(b, "fig8")
	// Headline: MUSIC p50 on IUs.
	reportCell(b, tables, 1, 4, "music-ius-p50-ms")
}

func BenchmarkFig9YCSB(b *testing.B) {
	tables := runExperiment(b, "fig9")
	// Headline: MUSIC/MSCP ratio on the update-only workload.
	reportCell(b, tables, 2, 6, "music/mscp-u-ratio")
}

func BenchmarkAblationDesignChoices(b *testing.B) {
	tables := runExperiment(b, "ablation")
	// Headline: baseline uncontended critical-section latency.
	reportCell(b, tables, 0, 1, "baseline-cs-ms")
}
